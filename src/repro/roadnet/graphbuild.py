"""Map preparation (paper Sec. IV.A).

Reconstructs the road-network graph so that each edge is a single merged
chain of traffic elements between two junctions:

1. Build an endpoint table classifying every element endpoint as a
   *junction* (at least three element endpoints coincide, or a dead end)
   or an *intermediate point* (exactly two elements touch).
2. Walk chains of elements through intermediate points, merging their
   geometries (reversing where digitization direction opposes the walk)
   and intersecting their flow directions.
3. Emit the junction-pair table (paper Table 1) and the final
   :class:`~repro.roadnet.graph.RoadGraph`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.geo.geometry import LineString, Point
from repro.roadnet.elements import FlowDirection, TrafficElement
from repro.roadnet.graph import ElementSpan, RoadEdge, RoadGraph, RoadNode

#: Coordinates closer than this (metres) are the same endpoint.
ENDPOINT_QUANTUM_M = 0.05


def _endpoint_key(p: Point, quantum: float = ENDPOINT_QUANTUM_M) -> tuple[int, int]:
    return (round(p[0] / quantum), round(p[1] / quantum))


@dataclass
class EndpointInfo:
    """All element endpoints coinciding at one location."""

    key: tuple[int, int]
    position: Point
    incidences: list[tuple[int, bool]]  # (element_id, is_start_endpoint)

    @property
    def degree(self) -> int:
        return len(self.incidences)

    @property
    def is_junction(self) -> bool:
        """Junctions per the paper: >= 3 incident elements; dead ends too."""
        return self.degree != 2


@dataclass(frozen=True)
class JunctionPair:
    """One row of the paper's Table 1: a merged edge between junctions."""

    junction1: Point
    element_ids: tuple[int, ...]
    junction2: Point


def classify_endpoints(
    elements: Iterable[TrafficElement],
) -> dict[tuple[int, int], EndpointInfo]:
    """Build the endpoint table of Sec. IV.A.

    Each element contributes its start and end endpoint; coincident
    endpoints (within :data:`ENDPOINT_QUANTUM_M`) are pooled.
    """
    table: dict[tuple[int, int], EndpointInfo] = {}
    for element in elements:
        for point, is_start in ((element.start(), True), (element.end(), False)):
            key = _endpoint_key(point)
            info = table.get(key)
            if info is None:
                info = EndpointInfo(key=key, position=point, incidences=[])
                table[key] = info
            info.incidences.append((element.element_id, is_start))
    return table


def _traversal_allowed(element: TrafficElement, reversed_: bool) -> tuple[bool, bool]:
    """(forward_ok, backward_ok) of an element in the chain's frame."""
    flow = element.flow.reversed() if reversed_ else element.flow
    forward_ok = flow in (FlowDirection.BOTH, FlowDirection.FORWARD)
    backward_ok = flow in (FlowDirection.BOTH, FlowDirection.BACKWARD)
    return forward_ok, backward_ok


def _merge_chain(
    chain: Sequence[tuple[TrafficElement, bool]], edge_id: int, u: int, v: int
) -> RoadEdge:
    """Merge an oriented element chain into one :class:`RoadEdge`."""
    parts = []
    spans = []
    offset = 0.0
    forward_all = True
    backward_all = True
    for element, reversed_ in chain:
        geom = element.geometry.reversed() if reversed_ else element.geometry
        parts.append(geom)
        spans.append(
            ElementSpan(
                element_id=element.element_id,
                start_arc=offset,
                end_arc=offset + geom.length,
                reversed_=reversed_,
                speed_limit_kmh=element.speed_limit_kmh,
            )
        )
        offset += geom.length
        fwd, bwd = _traversal_allowed(element, reversed_)
        forward_all = forward_all and fwd
        backward_all = backward_all and bwd
    return RoadEdge(
        edge_id=edge_id,
        u=u,
        v=v,
        geometry=LineString.concat(parts),
        spans=tuple(spans),
        forward_allowed=forward_all,
        backward_allowed=backward_all,
    )


def build_road_graph(
    elements: Iterable[TrafficElement],
) -> tuple[RoadGraph, list[JunctionPair]]:
    """Run the full map preparation and return (graph, Table 1 rows).

    Every traffic element ends up in exactly one edge.  Cycles made purely
    of intermediate points (a block with no junction) get one synthetic
    junction so they remain representable.
    """
    elements = list(elements)
    by_id = {e.element_id: e for e in elements}
    if len(by_id) != len(elements):
        raise ValueError("duplicate element ids")
    endpoints = classify_endpoints(elements)

    graph = RoadGraph()
    pairs: list[JunctionPair] = []
    node_ids: dict[tuple[int, int], int] = {}
    visited: set[int] = set()
    next_edge_id = 1

    def node_for(key: tuple[int, int]) -> int:
        if key not in node_ids:
            info = endpoints[key]
            node_id = len(node_ids) + 1
            node_ids[key] = node_id
            graph.add_node(RoadNode(node_id=node_id, position=info.position, degree=info.degree))
        return node_ids[key]

    def walk_chain(start_key: tuple[int, int], element_id: int) -> tuple[
        list[tuple[TrafficElement, bool]], tuple[int, int]
    ]:
        """Walk from a junction through intermediates; return chain and end key."""
        chain: list[tuple[TrafficElement, bool]] = []
        current_key = start_key
        current_element_id = element_id
        while True:
            element = by_id[current_element_id]
            start_k = _endpoint_key(element.start())
            end_k = _endpoint_key(element.end())
            if start_k == current_key:
                reversed_ = False
                next_key = end_k
            elif end_k == current_key:
                reversed_ = True
                next_key = start_k
            else:  # pragma: no cover - defensive, walk invariant violated
                raise RuntimeError("chain walk lost its endpoint")
            chain.append((element, reversed_))
            visited.add(current_element_id)
            info = endpoints[next_key]
            if info.is_junction:
                return chain, next_key
            # Intermediate point: exactly one other element continues.
            others = [eid for eid, __ in info.incidences if eid != current_element_id]
            if len(others) != 1:
                # Both incidences belong to the current element (a loop whose
                # far end folds back); treat as terminal.
                return chain, next_key
            nxt = others[0]
            if nxt in visited:
                return chain, next_key
            current_key = next_key
            current_element_id = nxt

    # Pass 1: chains anchored at junctions (and dead ends).
    for info in endpoints.values():
        if not info.is_junction:
            continue
        for element_id, __ in info.incidences:
            if element_id in visited:
                continue
            chain, end_key = walk_chain(info.key, element_id)
            u = node_for(info.key)
            v = node_for(end_key)
            edge = _merge_chain(chain, next_edge_id, u, v)
            next_edge_id += 1
            graph.add_edge(edge)
            pairs.append(
                JunctionPair(
                    junction1=endpoints[info.key].position,
                    element_ids=edge.element_ids,
                    junction2=endpoints[end_key].position,
                )
            )

    # Pass 2: cycles of pure intermediate points (no junction anywhere).
    for element in elements:
        if element.element_id in visited:
            continue
        start_key = _endpoint_key(element.start())
        chain, end_key = walk_chain(start_key, element.element_id)
        u = node_for(start_key)
        v = node_for(end_key)
        edge = _merge_chain(chain, next_edge_id, u, v)
        next_edge_id += 1
        graph.add_edge(edge)
        pairs.append(
            JunctionPair(
                junction1=endpoints[start_key].position,
                element_ids=edge.element_ids,
                junction2=endpoints[end_key].position,
            )
        )

    return graph, pairs
