"""``.npz`` persistence of a prepared :class:`~repro.roadnet.ch.CHEngine`.

Contraction is the expensive half of CH; the artifact it produces is a
handful of flat integer/float arrays.  :func:`save_ch` serialises them
with :func:`numpy.savez_compressed` and :func:`load_ch` rebuilds an
engine (re-deriving the upward adjacency), so a process pool prepares
the hierarchy once — in the orchestrator or a previous run — and every
worker loads the shared artifact instead of re-contracting.

The file embeds a format version plus the weight kind and one-way
semantics the hierarchy was built under; loading rejects unknown
versions loudly rather than answering queries from the wrong geometry.
Format v2 additionally persists the upward/downward arc permutation the
many-to-many matrix kernels iterate (:mod:`repro.roadnet.ch.matrix`);
v1 artifacts still load, reconstructing the permutation from the arc
arrays at load time.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.obs import get_registry
from repro.roadnet.ch.engine import CH_FORMAT_VERSION, CHEngine

_ARRAY_FIELDS = (
    "node_ids",
    "rank",
    "arc_from",
    "arc_to",
    "arc_weight",
    "arc_edge",
    "arc_skip1",
    "arc_skip2",
)

#: v2 additions: the upward/downward arc permutation (CSR offsets plus
#: arc positions grouped per node) that the engine otherwise re-derives
#: with a Python scan over every arc at load time.
_PERMUTATION_FIELDS = (
    "up_fwd_offsets",
    "up_fwd_arcs",
    "up_bwd_offsets",
    "up_bwd_arcs",
)

#: Formats :func:`load_ch` accepts.  v1 artifacts (no permutation
#: arrays) reconstruct the permutation on load; new saves are always v2.
_SUPPORTED_VERSIONS = (1, 2)


def save_ch(engine: CHEngine, path: str | Path) -> Path:
    """Write ``engine`` to ``path`` as a compressed ``.npz`` artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {
        name: getattr(engine, name)
        for name in _ARRAY_FIELDS + _PERMUTATION_FIELDS
    }
    with path.open("wb") as handle:
        np.savez_compressed(
            handle,
            version=np.int64(CH_FORMAT_VERSION),
            weight=np.str_(engine.weight),
            respect_oneway=np.bool_(engine.respect_oneway),
            **arrays,
        )
    get_registry().counter("routing.ch_artifact_saves").inc()
    return path


def load_ch(path: str | Path) -> CHEngine:
    """Rebuild a :class:`CHEngine` from a :func:`save_ch` artifact."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as doc:
        version = int(doc["version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"{path}: unsupported CH artifact format version "
                f"v{version} (supported: "
                f"{', '.join(f'v{v}' for v in _SUPPORTED_VERSIONS)})"
            )
        arrays = {name: doc[name].copy() for name in _ARRAY_FIELDS}
        if version >= 2:
            arrays.update(
                {name: doc[name].copy() for name in _PERMUTATION_FIELDS}
            )
        engine = CHEngine(
            weight=str(doc["weight"]),
            respect_oneway=bool(doc["respect_oneway"]),
            **arrays,
        )
    get_registry().counter("routing.ch_artifact_loads").inc()
    return engine
