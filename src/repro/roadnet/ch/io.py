"""``.npz`` persistence of a prepared :class:`~repro.roadnet.ch.CHEngine`.

Contraction is the expensive half of CH; the artifact it produces is a
handful of flat integer/float arrays.  :func:`save_ch` serialises them
with :func:`numpy.savez_compressed` and :func:`load_ch` rebuilds an
engine (re-deriving the upward adjacency), so a process pool prepares
the hierarchy once — in the orchestrator or a previous run — and every
worker loads the shared artifact instead of re-contracting.

The file embeds a format version plus the weight kind and one-way
semantics the hierarchy was built under; loading rejects mismatched
versions loudly rather than answering queries from the wrong geometry.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.obs import get_registry
from repro.roadnet.ch.engine import CH_FORMAT_VERSION, CHEngine

_ARRAY_FIELDS = (
    "node_ids",
    "rank",
    "arc_from",
    "arc_to",
    "arc_weight",
    "arc_edge",
    "arc_skip1",
    "arc_skip2",
)


def save_ch(engine: CHEngine, path: str | Path) -> Path:
    """Write ``engine`` to ``path`` as a compressed ``.npz`` artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: getattr(engine, name) for name in _ARRAY_FIELDS}
    with path.open("wb") as handle:
        np.savez_compressed(
            handle,
            version=np.int64(CH_FORMAT_VERSION),
            weight=np.str_(engine.weight),
            respect_oneway=np.bool_(engine.respect_oneway),
            **arrays,
        )
    get_registry().counter("routing.ch_artifact_saves").inc()
    return path


def load_ch(path: str | Path) -> CHEngine:
    """Rebuild a :class:`CHEngine` from a :func:`save_ch` artifact."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as doc:
        version = int(doc["version"])
        if version != CH_FORMAT_VERSION:
            raise ValueError(
                f"{path}: CH artifact format v{version}, "
                f"expected v{CH_FORMAT_VERSION}"
            )
        engine = CHEngine(
            weight=str(doc["weight"]),
            respect_oneway=bool(doc["respect_oneway"]),
            **{name: doc[name].copy() for name in _ARRAY_FIELDS},
        )
    get_registry().counter("routing.ch_artifact_loads").inc()
    return engine
