"""Contraction-hierarchy routing engine — precomputed gap-fill shortest paths.

The paper's map-matching stage leans on pgRouting's Dijkstra to bridge
gaps between distant fixes (Sec. IV.E).  Flat Dijkstra pays the full
graph-exploration cost on *every* query; a contraction hierarchy (CH)
pays a one-time preprocessing cost — ordering nodes by importance and
inserting shortcut arcs that preserve shortest-path distances — after
which each query is a tiny bidirectional search over the "upward" graph
only.  On the synthetic Oulu network queries settle a handful of nodes
instead of hundreds.

The package splits along the classic CH phases:

* :mod:`repro.roadnet.ch.csr` — flatten a
  :class:`~repro.roadnet.graph.RoadGraph` into CSR-style NumPy arrays
  (offsets/targets/weights/edge ids), honouring one-way semantics;
* :mod:`repro.roadnet.ch.contract` — edge-difference node ordering with
  a lazy-update priority queue and witness-search-limited shortcut
  insertion;
* :mod:`repro.roadnet.ch.engine` — :class:`CHEngine`: the bidirectional
  upward query plus recursive shortcut unpacking back to the original
  :class:`~repro.roadnet.graph.RoadEdge` sequence, so the result is a
  plain :class:`~repro.roadnet.routing.PathResult` and downstream
  helpers (``shortest_path_geometry``, ``path_travel_time_s``) work
  unchanged;
* :mod:`repro.roadnet.ch.matrix` — bucket-based many-to-many queries
  (:func:`route_matrix` / :func:`route_pairs`): one backward upward
  search per target fills per-node buckets, one forward search per
  source scans them, and every answer is bitwise-identical to the
  point-to-point query;
* :mod:`repro.roadnet.ch.io` — ``.npz`` save/load so worker processes
  load a shared prepared artifact instead of re-contracting per process.

Entry points: :func:`prepare_ch` builds an engine from a road graph;
:func:`save_ch` / :func:`load_ch` persist it; :func:`route_matrix` /
:func:`route_pairs` answer batches.
"""

from repro.roadnet.ch.contract import ContractionResult, contract_graph
from repro.roadnet.ch.csr import CSRGraph, build_csr
from repro.roadnet.ch.engine import CHEngine, prepare_ch
from repro.roadnet.ch.io import load_ch, save_ch
from repro.roadnet.ch.matrix import RouteMatrix, route_matrix, route_pairs

__all__ = [
    "CHEngine",
    "CSRGraph",
    "ContractionResult",
    "RouteMatrix",
    "build_csr",
    "contract_graph",
    "load_ch",
    "prepare_ch",
    "route_matrix",
    "route_pairs",
    "save_ch",
]
