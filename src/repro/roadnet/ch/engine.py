"""The CH query engine: bidirectional upward search + shortcut unpacking.

A CH query runs two Dijkstras that only ever relax arcs towards
higher-ranked nodes: a forward search from the source over *upward*
arcs, and a backward search from the target over reversed upward arcs.
Both search spaces are tiny — the hierarchy funnels every shortest path
through a small set of important nodes — and the cheapest node settled
by both sides is the apex of the optimal up-down path.

The arc chains on either side of the apex are then unpacked: shortcuts
expand recursively into their constituent arcs until only original
road-graph arcs remain, which map 1:1 onto ``RoadEdge`` traversals.  The
result is a plain :class:`~repro.roadnet.routing.PathResult` whose cost
is recomputed as the left-to-right sum of the unpacked arc weights — the
same accumulation order Dijkstra uses along the same path — so existing
consumers (``shortest_path_geometry``, ``path_travel_time_s``, the gap
filler's ``max_cost_m`` check) behave identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs import get_registry, span
from repro.roadnet.ch.contract import ContractionResult, contract_graph
from repro.roadnet.ch.csr import build_csr
from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import PathResult, Weight

_NO_PATH = PathResult(nodes=(), edges=(), cost=float("inf"))

#: Format version stamped into saved artifacts (see :mod:`.io`).  v2
#: added the upward/downward arc permutation used by the many-to-many
#: matrix kernels; v1 artifacts still load (the permutation is
#: reconstructed from the arc arrays).
CH_FORMAT_VERSION = 2


@dataclass(eq=False)
class CHEngine:
    """A prepared contraction hierarchy over one road graph + weight.

    Everything the query needs lives in flat arrays (what ``.npz``
    persistence serialises); the per-node upward adjacency lists are
    derived once at construction.  The engine answers
    :meth:`shortest_path` with results interchangeable with
    :func:`repro.roadnet.routing.shortest_path` — equal costs, a legal
    edge sequence, possibly a different tie among equal-cost paths.
    """

    weight: str
    respect_oneway: bool
    node_ids: np.ndarray      # (n,) int64: node index -> original id
    rank: np.ndarray          # (n,) int64 contraction order
    arc_from: np.ndarray
    arc_to: np.ndarray
    arc_weight: np.ndarray
    arc_edge: np.ndarray      # original RoadEdge id, -1 for shortcuts
    arc_skip1: np.ndarray
    arc_skip2: np.ndarray
    #: Upward arc permutation: ``up_fwd_arcs[up_fwd_offsets[u]:
    #: up_fwd_offsets[u+1]]`` are the positions of the upward arcs
    #: leaving node ``u`` (ascending position), and the ``bwd`` pair is
    #: the same grouping by head node for the backward search.  Saved in
    #: v2 artifacts; reconstructed from the arc arrays when absent.
    up_fwd_offsets: np.ndarray | None = None
    up_fwd_arcs: np.ndarray | None = None
    up_bwd_offsets: np.ndarray | None = None
    up_bwd_arcs: np.ndarray | None = None
    _index: dict[int, int] = field(default_factory=dict, repr=False)
    _up_fwd: list[list[tuple[int, float, int]]] = field(default_factory=list, repr=False)
    _up_bwd: list[list[tuple[int, float, int]]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {int(nid): i for i, nid in enumerate(self.node_ids)}
        if not self._up_fwd:
            self._build_upward()
        # Generation-stamped scratch state: reused across queries so the
        # hot path never allocates per-node dicts (stale entries are
        # invalidated by bumping the generation, not by clearing).
        n = len(self.node_ids)
        self._gen = 0
        self._dist = [[0.0] * n, [0.0] * n]
        self._prev = [[-1] * n, [-1] * n]
        self._seen = [[0] * n, [0] * n]
        self._done = [[0] * n, [0] * n]
        # Plain-list views of the arc arrays: NumPy scalar indexing is an
        # order of magnitude slower than list indexing, and unpacking
        # touches every arc of every answered path.
        self._node_id_list: list[int] = self.node_ids.tolist()
        self._arc_from_list: list[int] = self.arc_from.tolist()
        self._arc_to_list: list[int] = self.arc_to.tolist()
        self._arc_weight_list: list[float] = self.arc_weight.tolist()
        self._arc_edge_list: list[int] = self.arc_edge.tolist()
        self._arc_skip1_list: list[int] = self.arc_skip1.tolist()
        self._arc_skip2_list: list[int] = self.arc_skip2.tolist()
        # Shortcut-expansion memo shared by every query and by the
        # many-to-many kernels (see :mod:`.matrix`): arc position ->
        # flattened original-arc positions, in path order.
        self._expansion: dict[int, tuple[int, ...]] = {}
        # Upward-search memo for the many-to-many kernels: node index ->
        # completed ``(dist, prev)`` search state, forward and backward
        # separately.  An upward search depends only on its
        # start node, and batched workloads revisit the same endpoints
        # constantly (gate anchors, recurring gap endpoints), so caching
        # amortises the complete searches the bucket algorithm pays to
        # near zero over a study.  The states are never mutated after
        # construction, so reuse is deterministic and batch answers stay
        # bitwise-identical.
        self._fwd_search_memo: dict[int, tuple] = {}
        self._bwd_search_memo: dict[int, tuple] = {}

    def _build_upward(self) -> None:
        n = len(self.node_ids)
        if self.up_fwd_offsets is None:
            self._derive_permutation(n)
        fwd: list[list[tuple[int, float, int]]] = [[] for __ in range(n)]
        bwd: list[list[tuple[int, float, int]]] = [[] for __ in range(n)]
        arc_to = self.arc_to
        arc_from = self.arc_from
        arc_weight = self.arc_weight
        fwd_off = self.up_fwd_offsets.tolist()
        bwd_off = self.up_bwd_offsets.tolist()
        fwd_arcs = self.up_fwd_arcs.tolist()
        bwd_arcs = self.up_bwd_arcs.tolist()
        for u in range(n):
            fwd[u] = [
                (int(arc_to[pos]), float(arc_weight[pos]), pos)
                for pos in fwd_arcs[fwd_off[u]:fwd_off[u + 1]]
            ]
            bwd[u] = [
                (int(arc_from[pos]), float(arc_weight[pos]), pos)
                for pos in bwd_arcs[bwd_off[u]:bwd_off[u + 1]]
            ]
        self._up_fwd = fwd
        self._up_bwd = bwd

    def _derive_permutation(self, n: int) -> None:
        """Reconstruct the upward arc permutation from the arc arrays
        (v1 artifacts and freshly contracted hierarchies)."""
        rank = self.rank
        fwd: list[list[int]] = [[] for __ in range(n)]
        bwd: list[list[int]] = [[] for __ in range(n)]
        for pos in range(len(self.arc_from)):
            u = int(self.arc_from[pos])
            v = int(self.arc_to[pos])
            if rank[v] > rank[u]:
                fwd[u].append(pos)
            if rank[u] > rank[v]:
                bwd[v].append(pos)
        self.up_fwd_offsets = np.cumsum([0] + [len(arcs) for arcs in fwd], dtype=np.int64)
        self.up_fwd_arcs = np.array(
            [pos for arcs in fwd for pos in arcs], dtype=np.int64
        )
        self.up_bwd_offsets = np.cumsum([0] + [len(arcs) for arcs in bwd], dtype=np.int64)
        self.up_bwd_arcs = np.array(
            [pos for arcs in bwd for pos in arcs], dtype=np.int64
        )

    # -- introspection ------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def arc_count(self) -> int:
        return len(self.arc_from)

    @property
    def shortcut_count(self) -> int:
        return int((self.arc_edge < 0).sum())

    # -- query --------------------------------------------------------------

    def shortest_path(self, source: int, target: int) -> PathResult:
        """CH shortest path between two original node ids.

        Unknown node ids and disconnected pairs both yield a no-path
        result, mirroring :func:`~repro.roadnet.routing.shortest_path`.
        """
        registry = get_registry()
        registry.counter("routing.ch_query_calls").inc()
        if source == target:
            return PathResult(nodes=(source,), edges=(), cost=0.0)
        s = self._index.get(source)
        t = self._index.get(target)
        if s is None or t is None:
            return _NO_PATH

        self._gen += 1
        gen = self._gen
        adjacency = (self._up_fwd, self._up_bwd)
        dist, prev, seen, done = self._dist, self._prev, self._seen, self._done
        heaps: list[list[tuple[float, int]]] = [[(0.0, s)], [(0.0, t)]]
        for side, start in ((0, s), (1, t)):
            dist[side][start] = 0.0
            prev[side][start] = -1
            seen[side][start] = gen
        best_cost = float("inf")
        # Canonical apex rule (shared with the many-to-many kernels in
        # :mod:`.matrix`): among all nodes settled by BOTH sides, pick
        # the lexicographic minimum of (forward+backward cost, node
        # index).  Pruning is strict (`>`), so every total-minimiser
        # settles on both sides and the argmin is order-independent —
        # which is what makes batched answers bitwise-identical to
        # point-to-point ones.
        apex = -1
        apex_total = float("inf")
        settled = 0
        while heaps[0] or heaps[1]:
            # Work on the direction with the smaller frontier head; a
            # direction whose head already exceeds the best meeting cost
            # can never improve it (both searches only go upward).
            if heaps[0] and (not heaps[1] or heaps[0][0][0] <= heaps[1][0][0]):
                side = 0
            else:
                side = 1
            cost, node = heapq.heappop(heaps[side])
            if done[side][node] == gen:
                continue
            if cost > best_cost:
                heaps[side] = []
                continue
            done[side][node] = gen
            settled += 1
            other_side = 1 - side
            if seen[other_side][node] == gen:
                # Tentative meeting cost: a valid upper bound for the
                # pruning rule (tentative distances only over-estimate).
                total = cost + dist[other_side][node]
                if total < best_cost:
                    best_cost = total
                if done[other_side][node] == gen:
                    # Both sides final: an apex candidate.
                    if total < apex_total or (
                        total == apex_total and node < apex
                    ):
                        apex_total = total
                        apex = node
            side_dist = dist[side]
            side_seen = seen[side]
            side_prev = prev[side]
            side_done = done[side]
            heap = heaps[side]
            for other, weight, pos in adjacency[side][node]:
                if side_done[other] == gen:
                    continue
                new_cost = cost + weight
                if side_seen[other] != gen or new_cost < side_dist[other]:
                    side_dist[other] = new_cost
                    side_seen[other] = gen
                    side_prev[other] = pos
                    heapq.heappush(heap, (new_cost, other))
        registry.counter("routing.ch_settled_nodes").inc(settled)
        if apex < 0:
            return _NO_PATH
        arcs = self._arc_chain(apex, prev[0], reverse=True)
        arcs += self._arc_chain(apex, prev[1], reverse=False)
        return self._unpack(s, arcs)

    # -- batched queries (see repro.roadnet.ch.matrix) -----------------------

    def route_matrix(self, sources, targets):
        """Many-to-many distance table; see :func:`.matrix.route_matrix`."""
        from repro.roadnet.ch.matrix import route_matrix

        return route_matrix(self, sources, targets)

    def route_pairs(self, pairs):
        """Batched pair queries; see :func:`.matrix.route_pairs`."""
        from repro.roadnet.ch.matrix import route_pairs

        return route_pairs(self, pairs)

    def _arc_chain(self, apex: int, prev: list[int], reverse: bool) -> list[int]:
        """Arc positions from the search root to ``apex`` (root-first when
        ``reverse``, apex-first otherwise — i.e. always path order)."""
        chain: list[int] = []
        node = apex
        step = self._arc_from_list if reverse else self._arc_to_list
        while True:
            pos = prev[node]
            if pos < 0:
                break
            chain.append(pos)
            node = step[pos]
        if reverse:
            chain.reverse()
        return chain

    def _unpack(self, start_index: int, arcs: list[int]) -> PathResult:
        """Expand shortcuts and rebuild the original node/edge sequence."""
        skip1s = self._arc_skip1_list
        skip2s = self._arc_skip2_list
        original: list[int] = []
        stack = list(reversed(arcs))
        while stack:
            pos = stack.pop()
            skip1 = skip1s[pos]
            if skip1 < 0:
                original.append(pos)
            else:
                stack.append(skip2s[pos])
                stack.append(skip1)
        node_ids = self._node_id_list
        arc_to = self._arc_to_list
        arc_edge = self._arc_edge_list
        arc_weight = self._arc_weight_list
        nodes = [node_ids[start_index]]
        edges: list[int] = []
        cost = 0.0
        for pos in original:
            nodes.append(node_ids[arc_to[pos]])
            edges.append(arc_edge[pos])
            cost += arc_weight[pos]
        return PathResult(nodes=tuple(nodes), edges=tuple(edges), cost=cost)


def prepare_ch(
    graph: RoadGraph,
    weight: Weight = "length",
    respect_oneway: bool = True,
) -> CHEngine:
    """Build a :class:`CHEngine` for ``graph`` under one weight kind.

    Deterministic for a given graph (node order, arc order and the
    lazy-queue tie-breaks are all fixed), so every worker process — or a
    saved/loaded artifact — yields identical hierarchies.  Records
    ``routing.ch_*`` gauges plus a ``ch_prepare`` span.
    """
    t0 = perf_counter()
    with span("ch_prepare"):
        csr = build_csr(graph, weight=weight, respect_oneway=respect_oneway)
        result: ContractionResult = contract_graph(csr)
        engine = CHEngine(
            weight=weight,
            respect_oneway=respect_oneway,
            node_ids=csr.node_ids,
            rank=result.rank,
            arc_from=result.arc_from,
            arc_to=result.arc_to,
            arc_weight=result.arc_weight,
            arc_edge=result.arc_edge,
            arc_skip1=result.arc_skip1,
            arc_skip2=result.arc_skip2,
        )
    registry = get_registry()
    registry.counter("routing.ch_prepare_calls").inc()
    registry.gauge("routing.ch_prepare_seconds").set(perf_counter() - t0)
    registry.gauge("routing.ch_nodes").set(engine.node_count)
    registry.gauge("routing.ch_arcs").set(engine.arc_count)
    registry.gauge("routing.ch_shortcuts").set(engine.shortcut_count)
    return engine
