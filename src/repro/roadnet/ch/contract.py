"""Contraction-hierarchy preprocessing.

Nodes are removed ("contracted") one by one in ascending importance;
whenever removing a node would break a shortest path running through it,
a *shortcut* arc bridging the two incident arcs is inserted.  The result
is the original arc set plus shortcuts, and a rank per node — everything
the bidirectional upward query needs.

Importance is the classic lazy heuristic: ``2 * edge_difference +
deleted_neighbours``, where edge difference is (shortcuts required −
arcs removed) from a simulated contraction.  The priority queue is
updated lazily: popped nodes are re-evaluated and pushed back when
stale, which avoids recomputing every priority after every contraction.

A shortcut ``u -> x`` over ``v`` is only required when no *witness*
path of cost ``<= w(u,v) + w(v,x)`` survives in the remaining graph
without ``v``.  Witness searches are bounded (cost cap + settled-node
limit); a truncated search conservatively inserts the shortcut, which
can only add redundant arcs, never wrong distances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.roadnet.ch.csr import CSRGraph

#: Settled-node budget of one witness search during real contraction.
WITNESS_SETTLE_LIMIT = 120

#: Cheaper budget while simulating contractions for the priority queue.
SIMULATE_SETTLE_LIMIT = 40


@dataclass
class ContractionResult:
    """The contracted graph: all arcs (original + shortcuts) and ranks.

    Arc arrays are parallel.  Original arcs carry the originating
    ``RoadEdge`` id in ``arc_edge`` and ``-1`` in both skip columns;
    shortcuts carry ``-1`` in ``arc_edge`` and the two constituent arc
    positions (lower-rank arcs, possibly themselves shortcuts) in
    ``arc_skip1``/``arc_skip2``.
    """

    rank: np.ndarray          # (n,)  int64: contraction order, 0 first
    arc_from: np.ndarray      # (m,)  int64 node index
    arc_to: np.ndarray        # (m,)  int64 node index
    arc_weight: np.ndarray    # (m,)  float64
    arc_edge: np.ndarray      # (m,)  int64: RoadEdge id or -1
    arc_skip1: np.ndarray     # (m,)  int64: arc position or -1
    arc_skip2: np.ndarray     # (m,)  int64: arc position or -1

    @property
    def shortcut_count(self) -> int:
        return int((self.arc_edge < 0).sum())

    @property
    def arc_count(self) -> int:
        return len(self.arc_from)


class _Contractor:
    """Mutable working state of one contraction run."""

    def __init__(self, csr: CSRGraph) -> None:
        self.n = csr.node_count
        # Parallel arc store; grows as shortcuts are inserted.
        self.arc_from: list[int] = []
        self.arc_to: list[int] = []
        self.arc_weight: list[float] = []
        self.arc_edge: list[int] = []
        self.arc_skip1: list[int] = []
        self.arc_skip2: list[int] = []
        # Active adjacency: min-cost arc position per neighbour pair.
        self.out_adj: list[dict[int, int]] = [{} for __ in range(self.n)]
        self.in_adj: list[dict[int, int]] = [{} for __ in range(self.n)]
        self.contracted = [False] * self.n
        self.deleted_neighbours = [0] * self.n
        for u in range(self.n):
            for pos in csr.out_arcs(u):
                self._add_arc(
                    u,
                    int(csr.targets[pos]),
                    float(csr.weights[pos]),
                    int(csr.edge_ids[pos]),
                    -1,
                    -1,
                )

    def _add_arc(
        self, u: int, v: int, weight: float, edge: int, skip1: int, skip2: int
    ) -> int:
        pos = len(self.arc_from)
        self.arc_from.append(u)
        self.arc_to.append(v)
        self.arc_weight.append(weight)
        self.arc_edge.append(edge)
        self.arc_skip1.append(skip1)
        self.arc_skip2.append(skip2)
        # Keep only the cheapest parallel arc active (ties keep the
        # earlier arc, so the adjacency is deterministic).
        best = self.out_adj[u].get(v)
        if best is None or weight < self.arc_weight[best]:
            self.out_adj[u][v] = pos
            self.in_adj[v][u] = pos
        return pos

    # -- witness search -----------------------------------------------------

    def _witness_costs(
        self, source: int, excluded: int, cap: float, settle_limit: int
    ) -> dict[int, float]:
        """Bounded Dijkstra over the remaining graph without ``excluded``.

        Returns settled costs up to ``cap``; truncation (settle budget or
        cap) just means some targets stay unproven — callers then insert
        the shortcut, which is safe.
        """
        dist: dict[int, float] = {source: 0.0}
        settled: set[int] = set()
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap and len(settled) < settle_limit:
            cost, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if cost > cap:
                break
            for other, pos in self.out_adj[node].items():
                if other == excluded or self.contracted[other] or other in settled:
                    continue
                new_cost = cost + self.arc_weight[pos]
                if new_cost <= cap and new_cost < dist.get(other, float("inf")):
                    dist[other] = new_cost
                    heapq.heappush(heap, (new_cost, other))
        return {node: dist[node] for node in settled}

    # -- contraction --------------------------------------------------------

    def _shortcuts_for(
        self, v: int, settle_limit: int
    ) -> tuple[list[tuple[int, int, float, int, int]], int]:
        """Shortcuts required to contract ``v`` (and arcs it removes).

        Returns ``([(u, x, weight, skip1, skip2), ...], removed_arcs)``.
        """
        ins = [
            (u, pos)
            for u, pos in self.in_adj[v].items()
            if not self.contracted[u] and u != v
        ]
        outs = [
            (x, pos)
            for x, pos in self.out_adj[v].items()
            if not self.contracted[x] and x != v
        ]
        needed: list[tuple[int, int, float, int, int]] = []
        for u, in_pos in ins:
            w1 = self.arc_weight[in_pos]
            relevant = [(x, pos) for x, pos in outs if x != u]
            if not relevant:
                continue
            cap = max(w1 + self.arc_weight[pos] for __, pos in relevant)
            witness = self._witness_costs(u, v, cap, settle_limit)
            for x, out_pos in relevant:
                through = w1 + self.arc_weight[out_pos]
                if witness.get(x, float("inf")) <= through:
                    continue
                needed.append((u, x, through, in_pos, out_pos))
        removed = len(ins) + len(outs)
        return needed, removed

    def priority(self, v: int) -> int:
        needed, removed = self._shortcuts_for(v, SIMULATE_SETTLE_LIMIT)
        return 2 * (len(needed) - removed) + self.deleted_neighbours[v]

    def contract(self, v: int) -> int:
        """Contract ``v``; returns the number of shortcuts added."""
        needed, __ = self._shortcuts_for(v, WITNESS_SETTLE_LIMIT)
        for u, x, weight, skip1, skip2 in needed:
            self._add_arc(u, x, weight, -1, skip1, skip2)
        self.contracted[v] = True
        neighbours = set(self.out_adj[v]) | set(self.in_adj[v])
        for node in neighbours:
            if node != v and not self.contracted[node]:
                self.deleted_neighbours[node] += 1
        return len(needed)


def contract_graph(csr: CSRGraph) -> ContractionResult:
    """Run the full node ordering + shortcut insertion over ``csr``."""
    state = _Contractor(csr)
    n = state.n
    rank = np.zeros(n, dtype=np.int64)
    # Seed the lazy queue; node index breaks ties deterministically.
    heap: list[tuple[int, int]] = [(state.priority(v), v) for v in range(n)]
    heapq.heapify(heap)
    order = 0
    while heap:
        priority, v = heapq.heappop(heap)
        if state.contracted[v]:
            continue
        current = state.priority(v)
        if heap and current > heap[0][0]:
            heapq.heappush(heap, (current, v))
            continue
        state.contract(v)
        rank[v] = order
        order += 1
    return ContractionResult(
        rank=rank,
        arc_from=np.asarray(state.arc_from, dtype=np.int64),
        arc_to=np.asarray(state.arc_to, dtype=np.int64),
        arc_weight=np.asarray(state.arc_weight, dtype=np.float64),
        arc_edge=np.asarray(state.arc_edge, dtype=np.int64),
        arc_skip1=np.asarray(state.arc_skip1, dtype=np.int64),
        arc_skip2=np.asarray(state.arc_skip2, dtype=np.int64),
    )
