"""Bucket-based many-to-many CH queries.

Point-to-point CH pays two upward Dijkstras per pair; a batch of S×T
pairs over shared endpoints re-runs the same searches S·T times.  The
classic many-to-many algorithm (Knopp et al., ALENEX'07) runs each
search once instead: one *backward* upward search per target drops
``(target, distance)`` entries into per-node buckets, then one *forward*
upward search per source scans the buckets of every node it settles —
each scan hit is a candidate apex for that (source, target) pair.

Answers are bitwise-identical to repeated
:meth:`~repro.roadnet.ch.CHEngine.shortest_path`:

* the one-sided searches run to completion with the engine's exact
  relaxation rule, so their shortest-path trees match the truncated
  point-to-point sides wherever those settled;
* the apex is the same canonical lexicographic minimum of
  ``(forward+backward cost, node index)`` the engine uses — strict
  pruning there guarantees every minimiser is in both candidate sets;
* per-pair cost is re-derived as the left-to-right sum of the unpacked
  original arc weights, the same accumulation ``_unpack`` performs.

Costs are computed eagerly into a NumPy table (`inf` marks unreachable
pairs, exactly the point-to-point sentinel); node/edge tuples are only
materialised when :meth:`RouteMatrix.path` is called for a pair.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.obs import get_registry
from repro.roadnet.routing import PathResult

_NO_PATH = PathResult(nodes=(), edges=(), cost=float("inf"))


def _upward_search(
    adjacency: list[list[tuple[int, float, int]]], start: int
) -> tuple[dict[int, float], dict[int, int]]:
    """One complete upward Dijkstra; final distances and prev-arc tree.

    Identical relaxation rule to the engine's bidirectional sides (skip
    settled, strict improvement, ``(cost, node)`` heap order), so the
    tree agrees with a point-to-point query's wherever both settle.
    """
    dist: dict[int, float] = {start: 0.0}
    prev: dict[int, int] = {start: -1}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, start)]
    while heap:
        cost, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for other, weight, pos in adjacency[node]:
            if other in done:
                continue
            new_cost = cost + weight
            current = dist.get(other)
            if current is None or new_cost < current:
                dist[other] = new_cost
                prev[other] = pos
                heapq.heappush(heap, (new_cost, other))
    return dist, prev


def _expand(engine, pos: int) -> tuple[int, ...]:
    """Original-arc positions of arc ``pos`` in path order (memoised).

    The memo lives on the engine, so expansion work is shared across
    every pair of every batch (and every later batch on the engine).
    An explicit stack keeps deeply nested shortcuts off the Python
    recursion limit.
    """
    memo = engine._expansion
    cached = memo.get(pos)
    if cached is not None:
        return cached
    skip1s = engine._arc_skip1_list
    skip2s = engine._arc_skip2_list
    out: list[int] = []
    stack = [pos]
    while stack:
        p = stack.pop()
        hit = memo.get(p)
        if hit is not None:
            out.extend(hit)
            continue
        skip1 = skip1s[p]
        if skip1 < 0:
            out.append(p)
        else:
            stack.append(skip2s[p])
            stack.append(skip1)
    result = tuple(out)
    memo[pos] = result
    return result


def _pair_positions(
    engine,
    apex: int,
    fwd_prev: dict[int, int],
    bwd_prev: dict[int, int],
) -> list[int]:
    """Flattened original-arc positions of the up-down path through
    ``apex``, in path order — the sequence ``_unpack`` would produce."""
    arc_from = engine._arc_from_list
    arc_to = engine._arc_to_list
    chain: list[int] = []
    node = apex
    while True:
        pos = fwd_prev[node]
        if pos < 0:
            break
        chain.append(pos)
        node = arc_from[pos]
    chain.reverse()
    node = apex
    while True:
        pos = bwd_prev[node]
        if pos < 0:
            break
        chain.append(pos)
        node = arc_to[pos]
    positions: list[int] = []
    for pos in chain:
        positions.extend(_expand(engine, pos))
    return positions


def _pair_result(engine, start_index: int, positions: list[int]) -> PathResult:
    """Materialise nodes/edges/cost exactly like ``CHEngine._unpack``."""
    node_ids = engine._node_id_list
    arc_to = engine._arc_to_list
    arc_edge = engine._arc_edge_list
    arc_weight = engine._arc_weight_list
    nodes = [node_ids[start_index]]
    edges: list[int] = []
    cost = 0.0
    for pos in positions:
        nodes.append(node_ids[arc_to[pos]])
        edges.append(arc_edge[pos])
        cost += arc_weight[pos]
    return PathResult(nodes=tuple(nodes), edges=tuple(edges), cost=cost)


class RouteMatrix:
    """A computed many-to-many distance table with lazy path unpacking.

    ``costs`` is a ``(len(sources), len(targets))`` float64 array of
    shortest-path costs (``inf`` = unreachable, matching the
    point-to-point no-path sentinel).  :meth:`path` materialises the
    full :class:`~repro.roadnet.routing.PathResult` of one pair on
    demand and memoises it.
    """

    def __init__(
        self,
        engine,
        sources: tuple[int, ...],
        targets: tuple[int, ...],
        costs: np.ndarray,
        apexes: list[list[int]],
        fwd_states: list[tuple[dict[int, float], dict[int, int]] | None],
        bwd_states: list[tuple[dict[int, float], dict[int, int]] | None],
    ) -> None:
        self._engine = engine
        self.sources = sources
        self.targets = targets
        self.costs = costs
        self._source_index = {s: i for i, s in enumerate(sources)}
        self._target_index = {t: j for j, t in enumerate(targets)}
        self._apexes = apexes
        self._fwd_states = fwd_states
        self._bwd_states = bwd_states
        self._paths: dict[tuple[int, int], PathResult] = {}

    def cost(self, source: int, target: int) -> float:
        """Shortest-path cost of one (source, target) pair by node id."""
        return float(
            self.costs[self._source_index[source], self._target_index[target]]
        )

    def path(self, source: int, target: int) -> PathResult:
        """The pair's full path — bitwise what ``shortest_path`` returns."""
        key = (source, target)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        i = self._source_index[source]
        j = self._target_index[target]
        engine = self._engine
        if source == target:
            result = PathResult(nodes=(source,), edges=(), cost=0.0)
        else:
            apex = self._apexes[i][j]
            if apex < 0:
                result = _NO_PATH
            else:
                positions = _pair_positions(
                    engine,
                    apex,
                    self._fwd_states[i][1],
                    self._bwd_states[j][1],
                )
                result = _pair_result(
                    engine, engine._index[source], positions
                )
        self._paths[key] = result
        return result


def _apex_tables(
    engine, src_idxs: list[int | None], tgt_idxs: list[int | None]
) -> tuple[
    list[tuple[dict[int, float], dict[int, int]] | None],
    list[tuple[dict[int, float], dict[int, int]] | None],
    list[list[int]],
]:
    """Run the bucket algorithm: per-endpoint searches + apex per pair.

    ``None`` endpoint indices (unknown node ids) get no search and keep
    the no-path apex (-1) against every counterpart.

    Search states are memoised on the engine (keyed by start node): the
    same endpoints recur batch after batch, and a cached state is reused
    verbatim — the states are immutable once computed, so reuse cannot
    change any answer.  ``routing.ch_settled_nodes`` only counts freshly
    computed searches.

    """
    registry = get_registry()
    settled = 0
    fwd_memo = engine._fwd_search_memo
    bwd_memo = engine._bwd_search_memo

    # One backward upward search per target fills the per-node buckets.
    buckets: dict[int, list[tuple[int, float]]] = {}
    bwd_states: list[tuple[dict[int, float], dict[int, int]] | None] = []
    for j, t in enumerate(tgt_idxs):
        if t is None:
            bwd_states.append(None)
            continue
        state = bwd_memo.get(t)
        if state is None:
            state = _upward_search(engine._up_bwd, t)
            bwd_memo[t] = state
            settled += len(state[0])
        bwd_states.append(state)
        for node, d in state[0].items():
            buckets.setdefault(node, []).append((j, d))

    # One forward upward search per source scans them.
    n_targets = len(tgt_idxs)
    fwd_states: list[tuple[dict[int, float], dict[int, int]] | None] = []
    apexes: list[list[int]] = []
    for s in src_idxs:
        if s is None:
            fwd_states.append(None)
            apexes.append([-1] * n_targets)
            continue
        state = fwd_memo.get(s)
        if state is None:
            state = _upward_search(engine._up_fwd, s)
            fwd_memo[s] = state
            settled += len(state[0])
        fwd_states.append(state)
        best_total = [float("inf")] * n_targets
        best_apex = [-1] * n_targets
        for node, ds in state[0].items():
            for j, dt in buckets.get(node, ()):
                total = ds + dt
                if total < best_total[j] or (
                    total == best_total[j] and node < best_apex[j]
                ):
                    best_total[j] = total
                    best_apex[j] = node
        apexes.append(best_apex)

    registry.counter("routing.ch_settled_nodes").inc(settled)
    return fwd_states, bwd_states, apexes


def route_matrix(
    engine, sources: Sequence[int], targets: Sequence[int]
) -> RouteMatrix:
    """Many-to-many shortest paths between original node ids.

    One backward search per target, one forward search per source —
    ``S + T`` searches instead of the ``2·S·T`` a query loop pays — then
    every pair's cost is re-derived from its unpacked arc chain, so
    costs *and* paths are bitwise-identical to calling
    :meth:`CHEngine.shortest_path` per pair (unknown ids and
    disconnected pairs included: their cost is ``inf``).
    """
    registry = get_registry()
    registry.counter("routing.ch_query_calls").inc()
    registry.counter("routing.ch_matrix_calls").inc()
    registry.counter("routing.ch_matrix_pairs").inc(len(sources) * len(targets))
    src_idxs = [engine._index.get(s) for s in sources]
    tgt_idxs = [engine._index.get(t) for t in targets]
    fwd_states, bwd_states, apexes = _apex_tables(engine, src_idxs, tgt_idxs)
    costs = np.full((len(sources), len(targets)), np.inf, dtype=np.float64)
    arc_weight = engine._arc_weight_list
    for i, source in enumerate(sources):
        row_apex = apexes[i]
        for j, target in enumerate(targets):
            if source == target:
                # shortest_path treats source == target as trivially
                # reachable (cost 0) even for ids outside the graph.
                costs[i, j] = 0.0
                continue
            apex = row_apex[j]
            if apex < 0:
                continue
            positions = _pair_positions(
                engine, apex, fwd_states[i][1], bwd_states[j][1]
            )
            cost = 0.0
            for pos in positions:
                cost += arc_weight[pos]
            costs[i, j] = cost
    return RouteMatrix(
        engine,
        tuple(sources),
        tuple(targets),
        costs,
        apexes,
        fwd_states,
        bwd_states,
    )


def route_pairs(
    engine, pairs: Sequence[tuple[int, int]]
) -> list[PathResult]:
    """Batched pair queries sharing searches across common endpoints.

    Answers ``pairs`` in order with full
    :class:`~repro.roadnet.routing.PathResult` objects, each
    bitwise-identical to ``engine.shortest_path(source, target)``.
    Unique endpoints are searched once no matter how many pairs share
    them; only the requested pairs are unpacked.
    """
    registry = get_registry()
    registry.counter("routing.ch_query_calls").inc()
    registry.counter("routing.ch_matrix_calls").inc()
    registry.counter("routing.ch_matrix_pairs").inc(len(pairs))
    sources: list[int] = []
    targets: list[int] = []
    source_index: dict[int, int] = {}
    target_index: dict[int, int] = {}
    for s, t in pairs:
        if s not in source_index:
            source_index[s] = len(sources)
            sources.append(s)
        if t not in target_index:
            target_index[t] = len(targets)
            targets.append(t)
    src_idxs = [engine._index.get(s) for s in sources]
    tgt_idxs = [engine._index.get(t) for t in targets]
    fwd_states, bwd_states, apexes = _apex_tables(engine, src_idxs, tgt_idxs)
    results: list[PathResult] = []
    memo: dict[tuple[int, int], PathResult] = {}
    for s, t in pairs:
        key = (s, t)
        cached = memo.get(key)
        if cached is None:
            i = source_index[s]
            j = target_index[t]
            if s == t:
                # Mirrors shortest_path's unconditional trivial result.
                cached = PathResult(nodes=(s,), edges=(), cost=0.0)
            else:
                apex = apexes[i][j]
                if apex < 0:
                    cached = _NO_PATH
                else:
                    positions = _pair_positions(
                        engine, apex, fwd_states[i][1], bwd_states[j][1]
                    )
                    cached = _pair_result(engine, src_idxs[i], positions)
            memo[key] = cached
        results.append(cached)
    return results
