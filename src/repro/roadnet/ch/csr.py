"""CSR flattening of a :class:`~repro.roadnet.graph.RoadGraph`.

The dict-of-lists adjacency that serves graph construction is the wrong
shape for preprocessing: contraction and the upward query want dense
integer node indices and flat arrays.  :func:`build_csr` assigns every
node a contiguous index (sorted by original node id, so the layout is
deterministic for a given graph) and emits one *directed arc* per legal
traversal direction of each edge — one-way edges contribute a single
arc, two-way edges contribute two.  Zero-information self loops are
dropped: they can never lie on a shortest path with non-negative
weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import Weight, WeightFn, _edge_weight


@dataclass
class CSRGraph:
    """A road graph as flat arrays of directed arcs.

    ``offsets[i]:offsets[i+1]`` slices the arcs leaving node index ``i``;
    ``targets``/``weights``/``edge_ids`` are parallel over arcs.
    ``node_ids`` maps node index back to the original graph node id.
    """

    weight: str
    respect_oneway: bool
    node_ids: np.ndarray      # (n,)  int64: index -> original node id
    offsets: np.ndarray       # (n+1,) int64
    targets: np.ndarray       # (m,)  int64: arc head node *index*
    weights: np.ndarray       # (m,)  float64, non-negative
    edge_ids: np.ndarray      # (m,)  int64: originating RoadEdge id
    _index: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {int(nid): i for i, nid in enumerate(self.node_ids)}

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def arc_count(self) -> int:
        return len(self.targets)

    def index_of(self, node_id: int) -> int | None:
        """Node index for an original node id (None when absent)."""
        return self._index.get(node_id)

    def out_arcs(self, index: int) -> range:
        """Arc positions leaving node ``index``."""
        return range(int(self.offsets[index]), int(self.offsets[index + 1]))


def build_csr(
    graph: RoadGraph,
    weight: Weight = "length",
    respect_oneway: bool = True,
    weight_fn: WeightFn | None = None,
) -> CSRGraph:
    """Flatten ``graph`` into a :class:`CSRGraph`.

    Arc order is deterministic: nodes sorted by id, and within a node
    the arcs sorted by originating edge id — rebuilding from the same
    graph always yields byte-identical arrays (the property the ``.npz``
    round-trip tests pin).
    """
    node_ids = sorted(n.node_id for n in graph.nodes())
    index = {nid: i for i, nid in enumerate(node_ids)}
    per_node: list[list[tuple[int, float, int]]] = [[] for __ in node_ids]
    for edge in sorted(graph.edges(), key=lambda e: e.edge_id):
        if edge.u == edge.v:
            continue  # self loops never improve a shortest path
        cost = weight_fn(edge) if weight_fn is not None else _edge_weight(edge, weight)
        cost = float(cost)
        if cost < 0.0:
            raise ValueError(f"negative weight on edge {edge.edge_id}")
        if edge.forward_allowed or not respect_oneway:
            per_node[index[edge.u]].append((index[edge.v], cost, edge.edge_id))
        if edge.backward_allowed or not respect_oneway:
            per_node[index[edge.v]].append((index[edge.u], cost, edge.edge_id))
    offsets = np.zeros(len(node_ids) + 1, dtype=np.int64)
    targets: list[int] = []
    weights: list[float] = []
    edge_ids: list[int] = []
    for i, arcs in enumerate(per_node):
        for head, cost, eid in arcs:
            targets.append(head)
            weights.append(cost)
            edge_ids.append(eid)
        offsets[i + 1] = len(targets)
    return CSRGraph(
        weight=weight,
        respect_oneway=respect_oneway,
        node_ids=np.asarray(node_ids, dtype=np.int64),
        offsets=offsets,
        targets=np.asarray(targets, dtype=np.int64),
        weights=np.asarray(weights, dtype=np.float64),
        edge_ids=np.asarray(edge_ids, dtype=np.int64),
        _index=index,
    )
