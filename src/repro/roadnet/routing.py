"""Shortest paths on the road graph — the pgRouting substitute.

The paper uses pgRouting's Dijkstra to fill map-matching gaps; this module
provides Dijkstra (with distance or free-flow travel-time weights) and an
A* variant with an admissible straight-line heuristic, plus a
:class:`RouteCache` so hot gap-fill queries (many trips drive the same
network gaps) are answered without re-running Dijkstra.
"""

from __future__ import annotations

import heapq
import json
import math
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Literal

from repro.faults import maybe_inject
from repro.geo.geometry import LineString
from repro.obs import get_logger, get_registry
from repro.roadnet.graph import RoadEdge, RoadGraph

_log = get_logger(__name__)

Weight = Literal["length", "time"]

#: Optional custom edge-cost function (must be non-negative).
WeightFn = Callable[[RoadEdge], float]

#: Selectable routing engines (the CLI's ``--routing-engine`` choices).
#: ``dijkstra`` is the default everywhere; ``ch`` needs a prepared
#: :class:`~repro.roadnet.ch.CHEngine` (see :func:`make_routing_engine`).
ROUTING_ENGINES = ("dijkstra", "astar", "bidirectional", "ch")

#: Upper bound on road speed used to keep the A* time heuristic admissible.
MAX_SPEED_KMH = 120.0


@dataclass(frozen=True)
class PathResult:
    """A shortest path: visited nodes, traversed edges, and total cost."""

    nodes: tuple[int, ...]
    edges: tuple[int, ...]
    cost: float

    @property
    def found(self) -> bool:
        return len(self.nodes) > 0

    @property
    def hop_count(self) -> int:
        return len(self.edges)


def _edge_weight(edge: RoadEdge, weight: Weight) -> float:
    if weight == "length":
        return edge.length
    return edge.travel_time_s


def dijkstra(
    graph: RoadGraph,
    source: int,
    target: int | None = None,
    weight: Weight = "length",
    respect_oneway: bool = True,
    max_cost: float = math.inf,
    weight_fn: WeightFn | None = None,
) -> dict[int, tuple[float, int | None, int | None]]:
    """Dijkstra from ``source``.

    Returns ``{node: (cost, prev_node, prev_edge)}`` for every settled node.
    Stops early once ``target`` is settled or costs exceed ``max_cost``.
    ``weight_fn`` overrides the built-in weights (route-choice noise, light
    penalties); it must return non-negative costs.
    """
    dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        if cost > max_cost:
            break
        for edge in graph.out_edges(node, respect_oneway):
            other = edge.other(node)
            if other in settled:
                continue
            step = weight_fn(edge) if weight_fn is not None else _edge_weight(edge, weight)
            new_cost = cost + step
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost, other))
    registry = get_registry()
    registry.counter("routing.dijkstra_calls").inc()
    registry.counter("routing.settled_nodes").inc(len(settled))
    return {n: v for n, v in dist.items() if n in settled or target is None}


def multi_target_dijkstra(
    graph: RoadGraph,
    source: int,
    targets: set[int],
    weight: Weight = "length",
    max_cost: float = math.inf,
    respect_oneway: bool = True,
) -> tuple[dict[int, tuple[float, int | None, int | None]], set[int]]:
    """Dijkstra from ``source`` until every target settles or the budget
    is spent.

    Returns ``(labels, settled)``.  A target in ``settled`` carries its
    exact optimal cost; a target absent from ``settled`` is provably
    farther than ``max_cost`` (early exit cannot skip it: the search
    only stops once all targets settled or the frontier passed the
    budget).  Settled labels and predecessor pointers are identical to
    what :func:`dijkstra` produces — relaxation order from a fixed
    source does not depend on the stop condition.
    """
    dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    settled: set[int] = set()
    remaining = set(targets)
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        remaining.discard(node)
        if not remaining:
            break
        if cost > max_cost:
            break
        for edge in graph.out_edges(node, respect_oneway):
            other = edge.other(node)
            if other in settled:
                continue
            new_cost = cost + _edge_weight(edge, weight)
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost, other))
    registry = get_registry()
    registry.counter("routing.dijkstra_calls").inc()
    registry.counter("routing.settled_nodes").inc(len(settled))
    return dist, settled


def _reconstruct(
    dist: dict[int, tuple[float, int | None, int | None]], source: int, target: int
) -> PathResult:
    if target not in dist:
        return PathResult(nodes=(), edges=(), cost=math.inf)
    nodes: list[int] = []
    edges: list[int] = []
    node: int | None = target
    while node is not None:
        nodes.append(node)
        __, prev_node, prev_edge = dist[node]
        if prev_edge is not None:
            edges.append(prev_edge)
        node = prev_node
    nodes.reverse()
    edges.reverse()
    if nodes[0] != source:
        return PathResult(nodes=(), edges=(), cost=math.inf)
    return PathResult(nodes=tuple(nodes), edges=tuple(edges), cost=dist[target][0])


def shortest_path(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    respect_oneway: bool = True,
    weight_fn: WeightFn | None = None,
) -> PathResult:
    """Dijkstra shortest path between two nodes."""
    if source == target:
        return PathResult(nodes=(source,), edges=(), cost=0.0)
    dist = dijkstra(graph, source, target, weight, respect_oneway, weight_fn=weight_fn)
    return _reconstruct(dist, source, target)


class RouteCache:
    """LRU cache of :func:`shortest_path` results.

    Keyed by ``(source_node, target_node, weight)``; unroutable pairs are
    cached too (gap filling probes many illegal endpoint combinations, and
    re-proving unreachability is as expensive as routing).  The cache is
    only valid for one graph and for the default one-way semantics — keep
    one cache per prepared road network.

    Effectiveness is observable, not cache-internal: every lookup and
    eviction feeds the ambient :class:`~repro.obs.MetricsRegistry`
    (``routing.route_cache_hits`` / ``..._misses`` / ``..._evictions``
    counters and a ``routing.route_cache_entries`` gauge), so hit rates
    land in ``metrics.json`` next to the ``routing.ch_*`` counters.

    ``path`` points at an optional JSON spill file: :meth:`load` warms the
    cache from it (missing file is fine) and :meth:`save` persists the
    current entries, so repeated runs — and every worker of a process
    pool — start hot.
    """

    def __init__(
        self, max_entries: int = 50_000, path: str | Path | None = None
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.path = Path(path) if path is not None else None
        self._entries: OrderedDict[tuple[int, int, str], PathResult] = OrderedDict()
        if self.path is not None:
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _update_hit_rate(registry) -> None:
        """Refresh the ``routing.route_cache_hit_rate`` gauge from the
        ambient registry's hit/miss counters (0.0 before any lookup)."""
        hits = registry.counter("routing.route_cache_hits").value
        misses = registry.counter("routing.route_cache_misses").value
        total = hits + misses
        registry.gauge("routing.route_cache_hit_rate").set(
            hits / total if total else 0.0
        )

    def get(self, source: int, target: int, weight: Weight) -> PathResult | None:
        entry = self._entries.get((source, target, weight))
        registry = get_registry()
        if entry is None:
            registry.counter("routing.route_cache_misses").inc()
            self._update_hit_rate(registry)
            return None
        self._entries.move_to_end((source, target, weight))
        registry.counter("routing.route_cache_hits").inc()
        self._update_hit_rate(registry)
        return entry

    def put(self, source: int, target: int, weight: Weight, result: PathResult) -> None:
        key = (source, target, weight)
        self._entries[key] = result
        self._entries.move_to_end(key)
        registry = get_registry()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            registry.counter("routing.route_cache_evictions").inc()
        registry.gauge("routing.route_cache_entries").set(len(self._entries))

    # -- batch access --------------------------------------------------------

    def get_many(
        self, pairs: list[tuple[int, int]], weight: Weight
    ) -> tuple[dict[tuple[int, int], PathResult], list[tuple[int, int]]]:
        """Split ``pairs`` into cached hits and uncached misses.

        Hits are refreshed to the LRU tail exactly like :meth:`get`;
        misses come back in input order (callers batch them through one
        engine query).  Hit/miss counters move per pair and the hit-rate
        gauge updates once per call, so worker gauges stay correct under
        batched resolution.
        """
        registry = get_registry()
        hits: dict[tuple[int, int], PathResult] = {}
        misses: list[tuple[int, int]] = []
        n_hits = 0
        for pair in pairs:
            key = (pair[0], pair[1], weight)
            entry = self._entries.get(key)
            if entry is None:
                misses.append(pair)
            else:
                self._entries.move_to_end(key)
                hits[pair] = entry
                n_hits += 1
        if n_hits:
            registry.counter("routing.route_cache_hits").inc(n_hits)
        if misses:
            registry.counter("routing.route_cache_misses").inc(len(misses))
        if pairs:
            self._update_hit_rate(registry)
        return hits, misses

    def put_many(
        self,
        results: dict[tuple[int, int], PathResult],
        weight: Weight,
    ) -> None:
        """Insert a batch of results; evicts and sets the entries gauge
        once at the end instead of per item."""
        if not results:
            return
        registry = get_registry()
        for (source, target), result in results.items():
            key = (source, target, weight)
            self._entries[key] = result
            self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            registry.counter("routing.route_cache_evictions").inc()
        registry.gauge("routing.route_cache_entries").set(len(self._entries))

    # -- persistence --------------------------------------------------------

    def load(self, path: str | Path | None = None) -> int:
        """Warm the cache from a JSON spill file; returns entries loaded.

        A corrupt or partially written spill file (interrupted save,
        disk damage) is discarded wholesale — the cache starts cold and
        a ``routing.route_cache_load_errors`` counter plus a warning log
        record the event.  Nothing a cache warms from may fail a run.
        """
        path = Path(path) if path is not None else self.path
        if path is None or not path.exists():
            return 0
        entries: list[tuple[int, int, str, PathResult]] = []
        try:
            doc = json.loads(path.read_text())
            for row in doc.get("routes", []):
                result = PathResult(
                    nodes=tuple(int(n) for n in row["nodes"]),
                    edges=tuple(int(e) for e in row["edges"]),
                    cost=math.inf if row["cost"] is None else float(row["cost"]),
                )
                entries.append(
                    (int(row["source"]), int(row["target"]), str(row["weight"]), result)
                )
        except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
            get_registry().counter("routing.route_cache_load_errors").inc()
            _log.warning(
                "route cache spill discarded",
                extra={"path": str(path), "error": f"{type(exc).__name__}: {exc}"},
            )
            return 0
        for source, target, weight, result in entries:
            self.put(source, target, weight, result)
        return len(entries)

    def save(self, path: str | Path | None = None) -> int:
        """Persist the cache as JSON; returns entries written."""
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ValueError("RouteCache.save needs a path")
        rows = [
            {
                "source": source,
                "target": target,
                "weight": weight,
                "nodes": list(result.nodes),
                "edges": list(result.edges),
                "cost": None if math.isinf(result.cost) else result.cost,
            }
            for (source, target, weight), result in self._entries.items()
        ]
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"routes": rows}) + "\n")
        return len(rows)


def make_routing_engine(
    graph: RoadGraph,
    name: str | None,
    weight: Weight = "length",
    ch_artifact: str | Path | None = None,
):
    """Resolve an engine name into the ``engine`` argument of
    :func:`cached_shortest_path`.

    ``None``/``"dijkstra"`` resolve to ``None`` (the flat default);
    ``"astar"``/``"bidirectional"`` pass through as names; ``"ch"``
    prepares a :class:`~repro.roadnet.ch.CHEngine` for ``graph`` — or
    loads ``ch_artifact`` when it exists and matches the requested
    weight, which is how pool workers skip re-contracting.
    """
    if name is None or name == "dijkstra":
        return None
    if name in ("astar", "bidirectional"):
        return name
    if name == "ch":
        from repro.roadnet.ch import load_ch, prepare_ch

        if ch_artifact is not None and Path(ch_artifact).exists():
            engine = load_ch(ch_artifact)
            if engine.weight == weight and engine.respect_oneway:
                return engine
        return prepare_ch(graph, weight=weight)
    raise ValueError(
        f"unknown routing engine {name!r}; choose from {ROUTING_ENGINES}"
    )


def _engine_shortest_path(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight,
    engine,
) -> PathResult:
    """Dispatch one shortest-path query to the selected engine."""
    if engine is None or engine == "dijkstra":
        return shortest_path(graph, source, target, weight)
    if engine == "astar":
        return astar(graph, source, target, weight)
    if engine == "bidirectional":
        return bidirectional_dijkstra(graph, source, target, weight)
    if isinstance(engine, str):
        raise ValueError(
            f"unknown routing engine {engine!r}; choose from {ROUTING_ENGINES} "
            "(a 'ch' engine must be prepared via make_routing_engine)"
        )
    if getattr(engine, "weight", weight) != weight:
        raise ValueError(
            f"routing engine prepared for weight={engine.weight!r}, "
            f"query asked for weight={weight!r}"
        )
    return engine.shortest_path(source, target)


def cached_shortest_path(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    cache: RouteCache | None = None,
    engine=None,
) -> PathResult:
    """:func:`shortest_path` through an optional :class:`RouteCache`.

    With ``cache=None`` and ``engine=None`` this is exactly
    ``shortest_path`` (default one-way semantics).  ``engine`` selects
    the algorithm answering cache misses — ``"astar"``,
    ``"bidirectional"``, or a prepared :class:`~repro.roadnet.ch.CHEngine`
    — all of which return optimal costs, so neither the cache nor the
    engine can change how *good* an answer is, only how fast it arrives
    (equal-cost ties may pick a different, equally short path).

    Fault hook: an active :class:`~repro.faults.FaultPlan` with a
    ``route_error_rate`` raises an injected timeout for chosen
    ``(source, target)`` pairs — but only inside a degradation guard
    (``require_guard``), so analysis code that routes outside the
    guarded match stage is never collateral damage.
    """
    maybe_inject("routing", (source, target), require_guard=True)
    if cache is None:
        return _engine_shortest_path(graph, source, target, weight, engine)
    hit = cache.get(source, target, weight)
    if hit is not None:
        return hit
    result = _engine_shortest_path(graph, source, target, weight, engine)
    cache.put(source, target, weight, result)
    return result


class RouteBatch:
    """Shared-candidate query planner for many shortest paths at once.

    Callers collect every ``(source, target)`` pair a unit of work will
    need — all the gaps of one trip, all the gate pairs of a flow table —
    and hand them to :meth:`resolve` in one call.  The planner answers
    from the :class:`RouteCache` first, then resolves the misses through
    the engine's many-to-many kernel
    (:meth:`~repro.roadnet.ch.CHEngine.route_pairs`) when the engine has
    one, falling back to a per-pair loop for the flat engines
    (``dijkstra``/``astar``/``bidirectional``).  Every answer is the
    engine's own :class:`PathResult`, so resolving through a batch is
    bitwise-identical to resolving pair by pair.

    Fault injection deliberately does **not** live here: injected routing
    timeouts must fire for exactly the pairs a sequential caller would
    have queried, in the same order, so callers invoke
    :func:`~repro.faults.maybe_inject` at their own lookup sites (see
    ``matching.gapfill``) before consulting the resolved batch.
    """

    def __init__(
        self,
        graph: RoadGraph,
        weight: Weight = "length",
        cache: RouteCache | None = None,
        engine=None,
    ) -> None:
        self.graph = graph
        self.weight = weight
        self.cache = cache
        self.engine = engine
        engine_weight = getattr(engine, "weight", weight)
        if engine_weight != weight:
            raise ValueError(
                f"routing engine prepared for weight={engine_weight!r}, "
                f"batch asked for weight={weight!r}"
            )

    @property
    def supports_many(self) -> bool:
        """Whether the engine answers batches natively (duck-typed so the
        ``ch`` package never has to be imported for flat engines)."""
        return callable(getattr(self.engine, "route_pairs", None))

    def resolve(
        self, pairs: list[tuple[int, int]]
    ) -> dict[tuple[int, int], PathResult]:
        """Answer every pair; returns ``{(source, target): PathResult}``.

        Duplicates collapse to one query (first-occurrence order is
        preserved for the miss batch, keeping engine traversal order
        deterministic).  Unreachable pairs come back as not-found
        results, never missing keys.
        """
        unique = list(dict.fromkeys(pairs))
        registry = get_registry()
        registry.counter("routing.batch_resolves").inc()
        registry.counter("routing.batch_pairs").inc(len(unique))
        if not unique:
            return {}
        if self.cache is not None:
            resolved, misses = self.cache.get_many(unique, self.weight)
        else:
            resolved, misses = {}, unique
        if not misses:
            return resolved
        if self.supports_many:
            answers = dict(zip(misses, self.engine.route_pairs(misses)))
        else:
            answers = {
                (s, t): _engine_shortest_path(
                    self.graph, s, t, self.weight, self.engine
                )
                for s, t in misses
            }
        if self.cache is not None:
            self.cache.put_many(answers, self.weight)
        resolved.update(answers)
        return resolved

    def resolve_costs(
        self,
        pairs: list[tuple[int, int]],
        max_costs: dict[int, float] | None = None,
    ) -> dict[tuple[int, int], float]:
        """Optimal path *costs* for every pair, without materialising paths.

        The cost-mode twin of :meth:`resolve` for workloads that only
        need distances (HMM transition scores).  Cache hits answer
        first.  Engines with a many-to-many kernel resolve the misses
        through ``route_pairs``, and the full paths are cached so later
        gap-fill queries over the same endpoints hit.  Flat engines
        degrade to **one multi-target Dijkstra per unique miss source**
        instead of one search per pair, bounded by ``max_costs[source]``
        when given; pairs whose optimal cost exceeds the source's bound
        come back as ``inf`` and are *not* cached (the bound makes them
        unproven, not unreachable).  Bounded-search paths are cached only
        for the default engine, where the reconstructed
        :class:`PathResult` is identical to what
        :func:`cached_shortest_path` would store — with ``astar`` /
        ``bidirectional`` selected, caching Dijkstra paths could flip
        equal-cost tie-breaks in later per-pair queries.
        """
        unique = list(dict.fromkeys(pairs))
        registry = get_registry()
        registry.counter("routing.batch_resolves").inc()
        registry.counter("routing.batch_pairs").inc(len(unique))
        costs: dict[tuple[int, int], float] = {}
        if not unique:
            return costs
        if self.cache is not None:
            hits, misses = self.cache.get_many(unique, self.weight)
            for pair, result in hits.items():
                costs[pair] = result.cost
        else:
            misses = unique
        if not misses:
            return costs
        if self.supports_many:
            answers = dict(zip(misses, self.engine.route_pairs(misses)))
            if self.cache is not None:
                self.cache.put_many(answers, self.weight)
            for pair, result in answers.items():
                costs[pair] = result.cost
            return costs
        by_source: dict[int, list[int]] = {}
        for s, t in misses:
            by_source.setdefault(s, []).append(t)
        bounds = max_costs or {}
        cacheable = self.engine is None or self.engine == "dijkstra"
        found: dict[tuple[int, int], PathResult] = {}
        for s, targets in by_source.items():
            bound = bounds.get(s, math.inf)
            labels, settled = multi_target_dijkstra(
                self.graph, s, set(targets), weight=self.weight, max_cost=bound
            )
            for t in targets:
                # Only settled-within-bound labels are exact; the search
                # settles at most one node beyond the budget and anything
                # unsettled is provably farther than the bound.
                if t in settled and labels[t][0] <= bound:
                    costs[(s, t)] = labels[t][0]
                    if cacheable:
                        found[(s, t)] = _reconstruct(labels, s, t)
                else:
                    costs[(s, t)] = math.inf
        if self.cache is not None and found:
            self.cache.put_many(found, self.weight)
        return costs


def astar(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    respect_oneway: bool = True,
) -> PathResult:
    """A* shortest path with a straight-line admissible heuristic."""
    if source == target:
        return PathResult(nodes=(source,), edges=(), cost=0.0)
    tx, ty = graph.node(target).position

    def h(node_id: int) -> float:
        px, py = graph.node(node_id).position
        d = math.hypot(px - tx, py - ty)
        if weight == "length":
            return d
        return d / (MAX_SPEED_KMH / 3.6)

    dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(h(source), source)]
    while heap:
        __, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        g = dist[node][0]
        for edge in graph.out_edges(node, respect_oneway):
            other = edge.other(node)
            if other in settled:
                continue
            new_cost = g + _edge_weight(edge, weight)
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost + h(other), other))
    registry = get_registry()
    registry.counter("routing.astar_calls").inc()
    registry.counter("routing.settled_nodes").inc(len(settled))
    return _reconstruct(dist, source, target)


def bidirectional_dijkstra(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    respect_oneway: bool = True,
) -> PathResult:
    """Bidirectional Dijkstra: meets in the middle, same optimal cost.

    Searches forward from ``source`` and backward from ``target``
    (traversing edges against their allowed direction in the backward
    frontier), stopping once the frontiers' combined radius exceeds the
    best meeting cost.  Typically settles far fewer nodes than plain
    Dijkstra on city-scale graphs.
    """
    if source == target:
        return PathResult(nodes=(source,), edges=(), cost=0.0)

    fwd_dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    bwd_dist: dict[int, tuple[float, int | None, int | None]] = {target: (0.0, None, None)}
    fwd_settled: set[int] = set()
    bwd_settled: set[int] = set()
    fwd_heap: list[tuple[float, int]] = [(0.0, source)]
    bwd_heap: list[tuple[float, int]] = [(0.0, target)]
    best_cost = math.inf
    meeting: int | None = None

    def relax(node: int, cost: float, dist, heap, backward: bool) -> None:
        nonlocal best_cost, meeting
        for edge in graph.out_edges(node, respect_oneway=False):
            other = edge.other(node)
            # Forward search needs node->other legal; backward search
            # needs other->node legal (we walk the path in reverse).
            entry = other if backward else node
            if respect_oneway and not edge.allows(entry):
                continue
            new_cost = cost + _edge_weight(edge, weight)
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost, other))

    while fwd_heap or bwd_heap:
        # Alternate by smaller frontier head.
        use_fwd = bool(fwd_heap) and (
            not bwd_heap or fwd_heap[0][0] <= bwd_heap[0][0]
        )
        if use_fwd:
            cost, node = heapq.heappop(fwd_heap)
            if node in fwd_settled:
                continue
            fwd_settled.add(node)
            if node in bwd_dist:
                total = cost + bwd_dist[node][0]
                if total < best_cost:
                    best_cost = total
                    meeting = node
            relax(node, cost, fwd_dist, fwd_heap, backward=False)
        else:
            cost, node = heapq.heappop(bwd_heap)
            if node in bwd_settled:
                continue
            bwd_settled.add(node)
            if node in fwd_dist:
                total = cost + fwd_dist[node][0]
                if total < best_cost:
                    best_cost = total
                    meeting = node
            relax(node, cost, bwd_dist, bwd_heap, backward=True)
        frontier = (fwd_heap[0][0] if fwd_heap else math.inf) + (
            bwd_heap[0][0] if bwd_heap else math.inf
        )
        if frontier >= best_cost:
            break

    registry = get_registry()
    registry.counter("routing.bidirectional_calls").inc()
    registry.counter("routing.settled_nodes").inc(
        len(fwd_settled) + len(bwd_settled)
    )
    if meeting is None:
        return PathResult(nodes=(), edges=(), cost=math.inf)

    # Stitch forward half and reversed backward half at the meeting node.
    nodes: list[int] = []
    edges: list[int] = []
    node: int | None = meeting
    while node is not None:
        nodes.append(node)
        __, prev_node, prev_edge = fwd_dist[node]
        if prev_edge is not None:
            edges.append(prev_edge)
        node = prev_node
    nodes.reverse()
    edges.reverse()
    node = meeting
    while True:
        __, next_node, next_edge = bwd_dist[node]
        if next_edge is None:
            break
        edges.append(next_edge)
        nodes.append(next_node)
        node = next_node
    return PathResult(nodes=tuple(nodes), edges=tuple(edges), cost=best_cost)


def shortest_path_geometry(graph: RoadGraph, path: PathResult) -> LineString | None:
    """Merged geometry of a path result (None for empty/point paths)."""
    if not path.found or not path.edges:
        return None
    parts = []
    for node, edge_id in zip(path.nodes[:-1], path.edges):
        edge = graph.edge(edge_id)
        parts.append(edge.geometry_from(node))
    return LineString.concat(parts)


def path_travel_time_s(graph: RoadGraph, path: PathResult) -> float:
    """Free-flow travel time of a path in seconds."""
    return sum(graph.edge(eid).travel_time_s for eid in path.edges)
