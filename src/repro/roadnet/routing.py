"""Shortest paths on the road graph — the pgRouting substitute.

The paper uses pgRouting's Dijkstra to fill map-matching gaps; this module
provides Dijkstra (with distance or free-flow travel-time weights) and an
A* variant with an admissible straight-line heuristic.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import Literal

from repro.geo.geometry import LineString
from repro.obs import get_registry
from repro.roadnet.graph import RoadEdge, RoadGraph

Weight = Literal["length", "time"]

#: Optional custom edge-cost function (must be non-negative).
WeightFn = Callable[[RoadEdge], float]

#: Upper bound on road speed used to keep the A* time heuristic admissible.
MAX_SPEED_KMH = 120.0


@dataclass(frozen=True)
class PathResult:
    """A shortest path: visited nodes, traversed edges, and total cost."""

    nodes: tuple[int, ...]
    edges: tuple[int, ...]
    cost: float

    @property
    def found(self) -> bool:
        return len(self.nodes) > 0

    @property
    def hop_count(self) -> int:
        return len(self.edges)


def _edge_weight(edge: RoadEdge, weight: Weight) -> float:
    if weight == "length":
        return edge.length
    return edge.travel_time_s


def dijkstra(
    graph: RoadGraph,
    source: int,
    target: int | None = None,
    weight: Weight = "length",
    respect_oneway: bool = True,
    max_cost: float = math.inf,
    weight_fn: WeightFn | None = None,
) -> dict[int, tuple[float, int | None, int | None]]:
    """Dijkstra from ``source``.

    Returns ``{node: (cost, prev_node, prev_edge)}`` for every settled node.
    Stops early once ``target`` is settled or costs exceed ``max_cost``.
    ``weight_fn`` overrides the built-in weights (route-choice noise, light
    penalties); it must return non-negative costs.
    """
    dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        if cost > max_cost:
            break
        for edge in graph.out_edges(node, respect_oneway):
            other = edge.other(node)
            if other in settled:
                continue
            step = weight_fn(edge) if weight_fn is not None else _edge_weight(edge, weight)
            new_cost = cost + step
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost, other))
    registry = get_registry()
    registry.counter("routing.dijkstra_calls").inc()
    registry.counter("routing.settled_nodes").inc(len(settled))
    return {n: v for n, v in dist.items() if n in settled or target is None}


def _reconstruct(
    dist: dict[int, tuple[float, int | None, int | None]], source: int, target: int
) -> PathResult:
    if target not in dist:
        return PathResult(nodes=(), edges=(), cost=math.inf)
    nodes: list[int] = []
    edges: list[int] = []
    node: int | None = target
    while node is not None:
        nodes.append(node)
        __, prev_node, prev_edge = dist[node]
        if prev_edge is not None:
            edges.append(prev_edge)
        node = prev_node
    nodes.reverse()
    edges.reverse()
    if nodes[0] != source:
        return PathResult(nodes=(), edges=(), cost=math.inf)
    return PathResult(nodes=tuple(nodes), edges=tuple(edges), cost=dist[target][0])


def shortest_path(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    respect_oneway: bool = True,
    weight_fn: WeightFn | None = None,
) -> PathResult:
    """Dijkstra shortest path between two nodes."""
    if source == target:
        return PathResult(nodes=(source,), edges=(), cost=0.0)
    dist = dijkstra(graph, source, target, weight, respect_oneway, weight_fn=weight_fn)
    return _reconstruct(dist, source, target)


def astar(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    respect_oneway: bool = True,
) -> PathResult:
    """A* shortest path with a straight-line admissible heuristic."""
    if source == target:
        return PathResult(nodes=(source,), edges=(), cost=0.0)
    tx, ty = graph.node(target).position

    def h(node_id: int) -> float:
        px, py = graph.node(node_id).position
        d = math.hypot(px - tx, py - ty)
        if weight == "length":
            return d
        return d / (MAX_SPEED_KMH / 3.6)

    dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(h(source), source)]
    while heap:
        __, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        g = dist[node][0]
        for edge in graph.out_edges(node, respect_oneway):
            other = edge.other(node)
            if other in settled:
                continue
            new_cost = g + _edge_weight(edge, weight)
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost + h(other), other))
    registry = get_registry()
    registry.counter("routing.astar_calls").inc()
    registry.counter("routing.settled_nodes").inc(len(settled))
    return _reconstruct(dist, source, target)


def bidirectional_dijkstra(
    graph: RoadGraph,
    source: int,
    target: int,
    weight: Weight = "length",
    respect_oneway: bool = True,
) -> PathResult:
    """Bidirectional Dijkstra: meets in the middle, same optimal cost.

    Searches forward from ``source`` and backward from ``target``
    (traversing edges against their allowed direction in the backward
    frontier), stopping once the frontiers' combined radius exceeds the
    best meeting cost.  Typically settles far fewer nodes than plain
    Dijkstra on city-scale graphs.
    """
    if source == target:
        return PathResult(nodes=(source,), edges=(), cost=0.0)

    fwd_dist: dict[int, tuple[float, int | None, int | None]] = {source: (0.0, None, None)}
    bwd_dist: dict[int, tuple[float, int | None, int | None]] = {target: (0.0, None, None)}
    fwd_settled: set[int] = set()
    bwd_settled: set[int] = set()
    fwd_heap: list[tuple[float, int]] = [(0.0, source)]
    bwd_heap: list[tuple[float, int]] = [(0.0, target)]
    best_cost = math.inf
    meeting: int | None = None

    def relax(node: int, cost: float, dist, heap, backward: bool) -> None:
        nonlocal best_cost, meeting
        for edge in graph.out_edges(node, respect_oneway=False):
            other = edge.other(node)
            # Forward search needs node->other legal; backward search
            # needs other->node legal (we walk the path in reverse).
            entry = other if backward else node
            if respect_oneway and not edge.allows(entry):
                continue
            new_cost = cost + _edge_weight(edge, weight)
            current = dist.get(other)
            if current is None or new_cost < current[0]:
                dist[other] = (new_cost, node, edge.edge_id)
                heapq.heappush(heap, (new_cost, other))

    while fwd_heap or bwd_heap:
        # Alternate by smaller frontier head.
        use_fwd = bool(fwd_heap) and (
            not bwd_heap or fwd_heap[0][0] <= bwd_heap[0][0]
        )
        if use_fwd:
            cost, node = heapq.heappop(fwd_heap)
            if node in fwd_settled:
                continue
            fwd_settled.add(node)
            if node in bwd_dist:
                total = cost + bwd_dist[node][0]
                if total < best_cost:
                    best_cost = total
                    meeting = node
            relax(node, cost, fwd_dist, fwd_heap, backward=False)
        else:
            cost, node = heapq.heappop(bwd_heap)
            if node in bwd_settled:
                continue
            bwd_settled.add(node)
            if node in fwd_dist:
                total = cost + fwd_dist[node][0]
                if total < best_cost:
                    best_cost = total
                    meeting = node
            relax(node, cost, bwd_dist, bwd_heap, backward=True)
        frontier = (fwd_heap[0][0] if fwd_heap else math.inf) + (
            bwd_heap[0][0] if bwd_heap else math.inf
        )
        if frontier >= best_cost:
            break

    registry = get_registry()
    registry.counter("routing.bidirectional_calls").inc()
    registry.counter("routing.settled_nodes").inc(
        len(fwd_settled) + len(bwd_settled)
    )
    if meeting is None:
        return PathResult(nodes=(), edges=(), cost=math.inf)

    # Stitch forward half and reversed backward half at the meeting node.
    nodes: list[int] = []
    edges: list[int] = []
    node: int | None = meeting
    while node is not None:
        nodes.append(node)
        __, prev_node, prev_edge = fwd_dist[node]
        if prev_edge is not None:
            edges.append(prev_edge)
        node = prev_node
    nodes.reverse()
    edges.reverse()
    node = meeting
    while True:
        __, next_node, next_edge = bwd_dist[node]
        if next_edge is None:
            break
        edges.append(next_edge)
        nodes.append(next_node)
        node = next_node
    return PathResult(nodes=tuple(nodes), edges=tuple(edges), cost=best_cost)


def shortest_path_geometry(graph: RoadGraph, path: PathResult) -> LineString | None:
    """Merged geometry of a path result (None for empty/point paths)."""
    if not path.found or not path.edges:
        return None
    parts = []
    for node, edge_id in zip(path.nodes[:-1], path.edges):
        edge = graph.edge(edge_id)
        parts.append(edge.geometry_from(node))
    return LineString.concat(parts)


def path_travel_time_s(graph: RoadGraph, path: PathResult) -> float:
    """Free-flow travel time of a path in seconds."""
    return sum(graph.edge(eid).travel_time_s for eid in path.edges)
