"""Road network substrate — the Digiroad substitute.

Digiroad models the Finnish road network as *traffic elements* (smallest
units of centre-line geometry) carrying attributes, plus point objects of
the transportation system (traffic lights, bus stops, pedestrian
crossings) and segmented line-like attribute data (speed limits, road
addresses).  This package reproduces that structure and the paper's map
preparation step:

* :mod:`repro.roadnet.elements` — traffic elements, point objects and
  segmented attributes;
* :mod:`repro.roadnet.digiroad` — the map database (storage + spatial
  queries over elements and point objects);
* :mod:`repro.roadnet.graphbuild` — Sec. IV.A: classify element endpoints
  as junctions/intermediate points and merge element chains into graph
  edges (Table 1);
* :mod:`repro.roadnet.graph` — the resulting road graph;
* :mod:`repro.roadnet.routing` — Dijkstra / A* shortest paths (the
  pgRouting substitute);
* :mod:`repro.roadnet.ch` — a precomputed contraction-hierarchy engine
  for the gap-fill hot path (CSR arrays, shortcut preprocessing,
  bidirectional upward queries, ``.npz`` persistence);
* :mod:`repro.roadnet.synthcity` — a deterministic synthetic downtown-Oulu
  generator used in place of the proprietary extract.
"""

from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import (
    FlowDirection,
    FunctionalClass,
    PointObject,
    PointObjectKind,
    SegmentedAttribute,
    TrafficElement,
)
from repro.roadnet.graph import RoadEdge, RoadGraph, RoadNode
from repro.roadnet.graphbuild import JunctionPair, build_road_graph, classify_endpoints
from repro.roadnet.routing import (
    ROUTING_ENGINES,
    PathResult,
    RouteBatch,
    RouteCache,
    astar,
    bidirectional_dijkstra,
    cached_shortest_path,
    dijkstra,
    make_routing_engine,
    path_travel_time_s,
    shortest_path,
    shortest_path_geometry,
)
from repro.roadnet.ch import (
    CHEngine,
    RouteMatrix,
    load_ch,
    prepare_ch,
    route_matrix,
    route_pairs,
    save_ch,
)
from repro.roadnet.synthcity import CitySpec, SyntheticCity, build_synthetic_oulu
from repro.roadnet.validate import MapIssue, MapValidationReport, validate_map

__all__ = [
    "CHEngine",
    "CitySpec",
    "FlowDirection",
    "FunctionalClass",
    "JunctionPair",
    "MapDatabase",
    "MapIssue",
    "MapValidationReport",
    "PathResult",
    "PointObject",
    "RouteBatch",
    "RouteCache",
    "PointObjectKind",
    "ROUTING_ENGINES",
    "RoadEdge",
    "RoadGraph",
    "RoadNode",
    "RouteMatrix",
    "SegmentedAttribute",
    "SyntheticCity",
    "TrafficElement",
    "astar",
    "bidirectional_dijkstra",
    "build_road_graph",
    "build_synthetic_oulu",
    "cached_shortest_path",
    "classify_endpoints",
    "dijkstra",
    "load_ch",
    "make_routing_engine",
    "path_travel_time_s",
    "prepare_ch",
    "route_matrix",
    "route_pairs",
    "save_ch",
    "shortest_path",
    "shortest_path_geometry",
    "validate_map",
]
