"""The road network graph.

Vertices are junctions (and dead ends), edges are merged chains of traffic
elements between two junctions — the output of the paper's map-preparation
step (Sec. IV.A).  Edges carry their merged geometry, the contributing
element ids with arc-length offsets (so any position on an edge maps back
to a Digiroad element), the allowed traversal directions, and a
travel-time estimate derived from per-element speed limits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.geometry import LineString, Point
from repro.geo.index import GridIndex


@dataclass(frozen=True)
class RoadNode:
    """A graph vertex: a junction or dead end of the road network."""

    node_id: int
    position: Point
    degree: int = 0


@dataclass(frozen=True)
class ElementSpan:
    """One traffic element's stretch within a merged edge.

    ``reversed_`` is True when the element's digitization direction runs
    against the edge direction (v -> u side).
    """

    element_id: int
    start_arc: float
    end_arc: float
    reversed_: bool
    speed_limit_kmh: float

    def covers(self, arc: float) -> bool:
        return self.start_arc <= arc <= self.end_arc

    def element_arc(self, edge_arc: float) -> float:
        """Map an edge arc position into the element's own arc length."""
        local = min(self.end_arc, max(self.start_arc, edge_arc)) - self.start_arc
        if self.reversed_:
            return (self.end_arc - self.start_arc) - local
        return local


@dataclass(frozen=True)
class RoadEdge:
    """A merged edge between two junctions.

    ``geometry`` runs from node ``u`` to node ``v``; ``forward_allowed`` /
    ``backward_allowed`` encode one-way constraints in that frame.
    """

    edge_id: int
    u: int
    v: int
    geometry: LineString
    spans: tuple[ElementSpan, ...]
    forward_allowed: bool = True
    backward_allowed: bool = True

    @property
    def length(self) -> float:
        return self.geometry.length

    @property
    def element_ids(self) -> tuple[int, ...]:
        return tuple(span.element_id for span in self.spans)

    @property
    def speed_limit_kmh(self) -> float:
        """Length-weighted harmonic-mean speed limit over the spans."""
        total = self.length
        if total <= 0.0:
            return self.spans[0].speed_limit_kmh if self.spans else 0.0
        inv = 0.0
        for span in self.spans:
            seg = span.end_arc - span.start_arc
            inv += seg / max(span.speed_limit_kmh, 1e-9)
        return total / inv if inv > 0.0 else 0.0

    @property
    def travel_time_s(self) -> float:
        """Free-flow traversal time using per-element limits."""
        t = 0.0
        for span in self.spans:
            seg = span.end_arc - span.start_arc
            t += seg / (max(span.speed_limit_kmh, 1e-9) / 3.6)
        return t

    def span_at(self, arc: float) -> ElementSpan:
        """The element span covering edge arc position ``arc``."""
        arc = min(self.length, max(0.0, arc))
        for span in self.spans:
            if span.covers(arc):
                return span
        return self.spans[-1]

    def allows(self, from_node: int) -> bool:
        """Can the edge be traversed starting at ``from_node``?"""
        if from_node == self.u:
            return self.forward_allowed
        if from_node == self.v:
            return self.backward_allowed
        raise ValueError(f"node {from_node} is not an endpoint of edge {self.edge_id}")

    def other(self, node_id: int) -> int:
        """Opposite endpoint."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"node {node_id} is not an endpoint of edge {self.edge_id}")

    def geometry_from(self, from_node: int) -> LineString:
        """Edge geometry oriented to start at ``from_node``."""
        if from_node == self.u:
            return self.geometry
        if from_node == self.v:
            return self.geometry.reversed()
        raise ValueError(f"node {from_node} is not an endpoint of edge {self.edge_id}")


class RoadGraph:
    """Adjacency-indexed road network with a spatial edge index."""

    def __init__(self, spatial_cell_m: float = 150.0) -> None:
        self._nodes: dict[int, RoadNode] = {}
        self._edges: dict[int, RoadEdge] = {}
        self._adj: dict[int, list[int]] = {}
        self._edge_index: GridIndex[int] = GridIndex(spatial_cell_m)

    # -- construction -------------------------------------------------------

    def add_node(self, node: RoadNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node {node.node_id}")
        self._nodes[node.node_id] = node
        self._adj.setdefault(node.node_id, [])

    def add_edge(self, edge: RoadEdge) -> None:
        if edge.edge_id in self._edges:
            raise ValueError(f"duplicate edge {edge.edge_id}")
        if edge.u not in self._nodes or edge.v not in self._nodes:
            raise ValueError(f"edge {edge.edge_id} references unknown node")
        self._edges[edge.edge_id] = edge
        self._adj[edge.u].append(edge.edge_id)
        if edge.v != edge.u:
            self._adj[edge.v].append(edge.edge_id)
        coords = edge.geometry.coords
        self._edge_index.insert(
            edge.edge_id,
            float(coords[:, 0].min()),
            float(coords[:, 1].min()),
            float(coords[:, 0].max()),
            float(coords[:, 1].max()),
        )

    # -- access ---------------------------------------------------------------

    def node(self, node_id: int) -> RoadNode:
        return self._nodes[node_id]

    def edge(self, edge_id: int) -> RoadEdge:
        return self._edges[edge_id]

    def nodes(self) -> list[RoadNode]:
        return list(self._nodes.values())

    def edges(self) -> list[RoadEdge]:
        return list(self._edges.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def out_edges(self, node_id: int, respect_oneway: bool = True) -> list[RoadEdge]:
        """Edges traversable away from ``node_id``."""
        out = []
        for edge_id in self._adj.get(node_id, ()):
            edge = self._edges[edge_id]
            if not respect_oneway or edge.allows(node_id):
                out.append(edge)
        return out

    def neighbors(self, node_id: int, respect_oneway: bool = True) -> list[int]:
        """Adjacent node ids reachable from ``node_id``."""
        return [e.other(node_id) for e in self.out_edges(node_id, respect_oneway)]

    def degree(self, node_id: int) -> int:
        return len(self._adj.get(node_id, ()))

    # -- spatial queries -------------------------------------------------------

    def edges_near(self, p: Point, radius: float) -> list[RoadEdge]:
        """Edges whose geometry passes within ``radius`` of ``p``."""
        out = []
        for edge_id in self._edge_index.query_radius(p, radius):
            edge = self._edges[edge_id]
            if edge.geometry.distance_to(p) <= radius:
                out.append(edge)
        return out

    def edges_near_many(
        self, points: list[Point], radius: float, *, exact: bool = True
    ) -> list[list[RoadEdge]]:
        """Bulk :meth:`edges_near` — one edge list per query point.

        With ``exact=True`` (default) each list matches
        ``edges_near(p, radius)`` exactly.  ``exact=False`` skips the
        per-edge geometry refinement and returns the bounding-box-level
        superset; batch callers that project every candidate pair anyway
        (see :func:`repro.matching.candidates.candidates_for_points`)
        refine with the same ``distance <= radius`` predicate themselves.
        """
        bbox_level = self._edge_index.query_radius_many(points, radius)
        if not exact:
            return [[self._edges[eid] for eid in ids] for ids in bbox_level]
        out: list[list[RoadEdge]] = []
        for p, ids in zip(points, bbox_level):
            near = []
            for edge_id in ids:
                edge = self._edges[edge_id]
                if edge.geometry.distance_to(p) <= radius:
                    near.append(edge)
            out.append(near)
        return out

    def nearest_edge(self, p: Point, max_radius: float = 500.0) -> RoadEdge | None:
        """Closest edge to ``p`` within ``max_radius``, or None.

        Expands the candidate radius geometrically so the exact nearest
        edge is found even when the first ring of grid cells is empty.
        """
        radius = 50.0
        while radius <= max_radius * 2.0:
            candidates = self.edges_near(p, min(radius, max_radius))
            if candidates:
                best = min(candidates, key=lambda e: e.geometry.distance_to(p))
                if best.geometry.distance_to(p) <= max_radius:
                    return best
                return None
            if radius >= max_radius:
                return None
            radius *= 2.0
        return None

    def nearest_node(self, p: Point) -> RoadNode | None:
        """Node closest to ``p`` (linear scan; nodes are few)."""
        if not self._nodes:
            return None
        return min(
            self._nodes.values(),
            key=lambda n: math.hypot(n.position[0] - p[0], n.position[1] - p[1]),
        )

    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box over node positions."""
        xs = [n.position[0] for n in self._nodes.values()]
        ys = [n.position[1] for n in self._nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    def __repr__(self) -> str:
        return f"RoadGraph({self.node_count} nodes, {self.edge_count} edges)"
