"""The 200 m x 200 m analysis grid (paper Sec. V, Table 5, Figs. 6 and 9).

Point speeds are pooled per grid cell; map features (traffic lights, bus
stops, pedestrian crossings, junctions) are counted per cell.  The paper
chose an even 200 m grid as a compromise between having enough
measurements per cell and capturing the effect of multiple map features.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geo.geometry import Point
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import PointObjectKind
from repro.roadnet.graph import RoadGraph

CellKey = tuple[int, int]


@dataclass(frozen=True)
class GridSpec:
    """Grid geometry: square cells of ``cell_size_m`` anchored at origin."""

    cell_size_m: float = 200.0

    def __post_init__(self) -> None:
        if self.cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")

    def cell_of(self, p: Point) -> CellKey:
        return (
            int(math.floor(p[0] / self.cell_size_m)),
            int(math.floor(p[1] / self.cell_size_m)),
        )

    def cell_centre(self, key: CellKey) -> Point:
        return (
            (key[0] + 0.5) * self.cell_size_m,
            (key[1] + 0.5) * self.cell_size_m,
        )


@dataclass
class CellStats:
    """Online mean/variance of point speeds in one cell (Welford)."""

    n: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two observations)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)


class GridAccumulator:
    """Pools point speeds per grid cell."""

    def __init__(self, spec: GridSpec | None = None) -> None:
        self.spec = spec or GridSpec()
        self._cells: dict[CellKey, CellStats] = {}
        self._speeds: dict[CellKey, list[float]] = {}

    def add_point(self, xy: Point, speed_kmh: float) -> CellKey:
        """Add one measured point speed; returns its cell."""
        key = self.spec.cell_of(xy)
        stats = self._cells.get(key)
        if stats is None:
            stats = CellStats()
            self._cells[key] = stats
            self._speeds[key] = []
        stats.add(speed_kmh)
        self._speeds[key].append(speed_kmh)
        return key

    def cells(self) -> dict[CellKey, CellStats]:
        """All cells that received at least one measurement."""
        return dict(self._cells)

    def speeds(self, key: CellKey) -> list[float]:
        """Raw speed observations of one cell."""
        return list(self._speeds.get(key, ()))

    def cell_means(self) -> dict[CellKey, float]:
        """Average point speed per cell."""
        return {key: stats.mean for key, stats in self._cells.items()}

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def point_count(self) -> int:
        return sum(stats.n for stats in self._cells.values())


def cell_feature_counts(
    spec: GridSpec,
    map_db: MapDatabase,
    graph: RoadGraph,
    cells: list[CellKey] | None = None,
) -> dict[CellKey, dict[str, int]]:
    """Per-cell counts of the four studied map features.

    Returns ``{cell: {"traffic_lights": n, "bus_stops": n,
    "pedestrian_crossings": n, "junctions": n}}``.  When ``cells`` is
    given, only those cells are reported (others are still counted but
    filtered from the result).
    """
    wanted = set(cells) if cells is not None else None
    out: dict[CellKey, dict[str, int]] = {}

    def bucket(key: CellKey) -> dict[str, int]:
        return out.setdefault(
            key,
            {
                "traffic_lights": 0,
                "bus_stops": 0,
                "pedestrian_crossings": 0,
                "junctions": 0,
            },
        )

    kind_names = {
        PointObjectKind.TRAFFIC_LIGHT: "traffic_lights",
        PointObjectKind.BUS_STOP: "bus_stops",
        PointObjectKind.PEDESTRIAN_CROSSING: "pedestrian_crossings",
    }
    for obj in map_db.point_objects():
        name = kind_names.get(obj.kind)
        if name is None:
            continue
        key = spec.cell_of(obj.position)
        if wanted is not None and key not in wanted:
            continue
        bucket(key)[name] += 1
    for node in graph.nodes():
        if graph.degree(node.node_id) >= 3:
            key = spec.cell_of(node.position)
            if wanted is not None and key not in wanted:
                continue
            bucket(key)["junctions"] += 1
    if wanted is not None:
        for key in wanted:
            bucket(key)  # ensure empty cells appear with zero counts
    return out


def stratify_cells_by_features(
    cell_stats: dict[CellKey, CellStats],
    features: dict[CellKey, dict[str, int]],
) -> dict[str, list[float]]:
    """The Table 5 stratification of cell average speeds.

    Returns the cell mean speeds grouped by the paper's four columns:
    lights == 0; lights == 0 and bus stops == 0; lights > 0 and
    bus stops > 0; lights > 0.
    """
    groups: dict[str, list[float]] = {
        "lights=0": [],
        "lights=0,bus=0": [],
        "lights>0,bus>0": [],
        "lights>0": [],
    }
    for key, stats in cell_stats.items():
        f = features.get(key, {})
        lights = f.get("traffic_lights", 0)
        buses = f.get("bus_stops", 0)
        if lights == 0:
            groups["lights=0"].append(stats.mean)
            if buses == 0:
                groups["lights=0,bus=0"].append(stats.mean)
        else:
            groups["lights>0"].append(stats.mean)
            if buses > 0:
                groups["lights>0,bus>0"].append(stats.mean)
    return groups
