"""Fetching map attribute data along matched routes (paper Sec. IV.F).

The matched route identifies the traffic elements driven; the map
database then yields the point objects hanging on them.  Counts are
de-duplicated by object id, so an object near a junction shared by two
traversed edges is counted once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.types import MatchedRoute
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.elements import PointObjectKind
from repro.roadnet.graph import RoadGraph

#: An object this close to the driven geometry belongs to the route.
OBJECT_RADIUS_M = 20.0


@dataclass(frozen=True)
class RouteAttributes:
    """Map attributes fetched along one matched route."""

    n_traffic_lights: int
    n_pedestrian_crossings: int
    n_bus_stops: int
    n_junctions: int
    element_ids: tuple[int, ...]


def fetch_route_attributes(
    route: MatchedRoute,
    graph: RoadGraph,
    map_db: MapDatabase,
    object_radius_m: float = OBJECT_RADIUS_M,
) -> RouteAttributes:
    """Fetch attribute data along a matched route.

    Junctions are interior graph nodes of the traversal with degree >= 3
    (the paper's crossings); point objects are collected from the map
    database within ``object_radius_m`` of each traversed edge.
    """
    seen: set[int] = set()
    counts = {
        PointObjectKind.TRAFFIC_LIGHT: 0,
        PointObjectKind.PEDESTRIAN_CROSSING: 0,
        PointObjectKind.BUS_STOP: 0,
    }
    for edge_id in route.edge_ids:
        edge = graph.edge(edge_id)
        coords = edge.geometry.coords
        x0 = float(coords[:, 0].min()) - object_radius_m
        y0 = float(coords[:, 1].min()) - object_radius_m
        x1 = float(coords[:, 0].max()) + object_radius_m
        y1 = float(coords[:, 1].max()) + object_radius_m
        centre = ((x0 + x1) / 2.0, (y0 + y1) / 2.0)
        radius = max(x1 - x0, y1 - y0) / 2.0 + object_radius_m
        for obj in map_db.objects_near(centre, radius):
            if obj.object_id in seen or obj.kind not in counts:
                continue
            if edge.geometry.distance_to(obj.position) <= object_radius_m:
                seen.add(obj.object_id)
                counts[obj.kind] += 1
    n_junctions = sum(
        1 for node_id in route.interior_nodes() if graph.degree(node_id) >= 3
    )
    return RouteAttributes(
        n_traffic_lights=counts[PointObjectKind.TRAFFIC_LIGHT],
        n_pedestrian_crossings=counts[PointObjectKind.PEDESTRIAN_CROSSING],
        n_bus_stops=counts[PointObjectKind.BUS_STOP],
        n_junctions=n_junctions,
        element_ids=tuple(route.element_ids(graph)),
    )


def directional_bus_stops(
    route: MatchedRoute,
    graph: RoadGraph,
    map_db: MapDatabase,
    object_radius_m: float = OBJECT_RADIUS_M,
) -> int:
    """Bus stops *serving the driven direction* along a matched route.

    The paper could not count bus stops per route "because the current map
    does not give information about the direction of a particular bus
    stop"; the synthetic extract carries a ``serves_heading`` attribute on
    each stop (derived from its kerb side), so the count the paper wanted
    becomes computable.  Stops without the attribute are counted
    unconditionally, keeping the function usable on poorer maps.
    """
    seen: set[int] = set()
    count = 0
    for edge_id, from_node in route.edge_sequence:
        edge = graph.edge(edge_id)
        geometry = edge.geometry_from(from_node)
        coords = edge.geometry.coords
        centre = (float(coords[:, 0].mean()), float(coords[:, 1].mean()))
        radius = edge.length / 2.0 + object_radius_m
        for obj in map_db.objects_near(centre, radius, PointObjectKind.BUS_STOP):
            if obj.object_id in seen:
                continue
            __, arc, dist = geometry.project(obj.position)
            if dist > object_radius_m:
                continue
            seen.add(obj.object_id)
            serves = obj.attribute("serves_heading")
            if serves is None:
                count += 1
                continue
            heading = geometry.heading_at(arc)
            if heading[0] * serves[0] + heading[1] * serves[1] > 0.0:
                count += 1
    return count
