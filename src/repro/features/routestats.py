"""Per-transition route statistics (paper Table 4).

For each post-filtered transition the paper derives: route time, route
distance, the share of *low speed* points (< 10 km/h — a major factor in
fuel consumption and emissions), the share of *normal speed* points
(at/above the local speed limit), fuel consumption, and the fetched map
attribute counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.attributes import fetch_route_attributes
from repro.matching.types import MatchedRoute
from repro.od.transitions import Transition
from repro.roadnet.digiroad import MapDatabase
from repro.roadnet.graph import RoadGraph

#: The paper's low-speed threshold.
LOW_SPEED_KMH = 10.0


@dataclass(frozen=True)
class RouteStats:
    """Everything Table 4 needs for one transition."""

    direction: str
    car_id: int
    season: str
    route_time_h: float
    route_distance_km: float
    low_speed_pct: float
    normal_speed_pct: float
    fuel_ml: float
    n_traffic_lights: int
    n_junctions: int
    n_pedestrian_crossings: int
    n_bus_stops: int


def transition_route_stats(
    transition: Transition,
    route: MatchedRoute,
    graph: RoadGraph,
    map_db: MapDatabase,
    low_speed_kmh: float = LOW_SPEED_KMH,
) -> RouteStats:
    """Derive the Table 4 statistics for one matched transition.

    Speed shares are computed over the matched route points: *low* means
    below ``low_speed_kmh``; *normal* means at or above the speed limit of
    the matched map position (fetched through the traffic element, so
    segmented speed restrictions are honoured).
    """
    from repro.weather.seasons import season_of

    points = [m.point for m in route.matched]
    if len(points) < 2:
        raise ValueError("transition route needs at least two matched points")
    duration_h = (points[-1].time_s - points[0].time_s) / 3600.0
    distance_km = route.length_m(graph) / 1000.0

    low = 0
    normal = 0
    for m in route.matched:
        edge = graph.edge(m.edge_id)
        span = edge.span_at(m.arc_m)
        limit = map_db.speed_limit_at(span.element_id, span.element_arc(m.arc_m))
        if m.point.speed_kmh < low_speed_kmh:
            low += 1
        if m.point.speed_kmh >= limit:
            normal += 1
    n = len(route.matched)
    attributes = fetch_route_attributes(route, graph, map_db)
    return RouteStats(
        direction=transition.direction,
        car_id=transition.segment.car_id,
        season=season_of(points[0].time_s).value,
        route_time_h=duration_h,
        route_distance_km=distance_km,
        low_speed_pct=100.0 * low / n,
        normal_speed_pct=100.0 * normal / n,
        fuel_ml=max(0.0, points[-1].fuel_ml - points[0].fuel_ml),
        n_traffic_lights=attributes.n_traffic_lights,
        n_junctions=attributes.n_junctions,
        n_pedestrian_crossings=attributes.n_pedestrian_crossings,
        n_bus_stops=attributes.n_bus_stops,
    )
