"""Feature fusion (paper Sec. IV.F and V).

Fetches digital-map attribute data along matched routes (traffic lights,
pedestrian crossings, junctions), derives the per-transition statistics of
Table 4 (time, distance, low-speed share, normal-speed share, fuel), and
aggregates point speeds and map features on the 200 m x 200 m analysis
grid of Table 5 / Figs. 6 and 9.
"""

from repro.features.attributes import (
    RouteAttributes,
    directional_bus_stops,
    fetch_route_attributes,
)
from repro.features.grid import (
    CellStats,
    GridAccumulator,
    GridSpec,
    cell_feature_counts,
    stratify_cells_by_features,
)
from repro.features.routestats import RouteStats, transition_route_stats

__all__ = [
    "CellStats",
    "GridAccumulator",
    "GridSpec",
    "RouteAttributes",
    "RouteStats",
    "cell_feature_counts",
    "directional_bus_stops",
    "fetch_route_attributes",
    "stratify_cells_by_features",
    "transition_route_stats",
]
