"""Gate roads and crossing detection.

A :class:`Gate` is a road segment at a key entry/exit point of the study
area, artificially thickened ("thick geometry") so that routes deviating
from the exact road are still caught.  A crossing is a movement between
two consecutive route points that passes through the thick region at an
angle within the configured window (the paper only keeps crossings "on an
angle within a predefined range").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geometry import LineString, Point
from repro.geo.polygon import ThickLine
from repro.obs import get_registry


@dataclass(frozen=True)
class Gate:
    """One thickened origin/destination road."""

    name: str
    road: LineString
    half_width_m: float = 60.0
    min_angle_deg: float = 45.0
    max_angle_deg: float = 90.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_thick", ThickLine(self.road, self.half_width_m))
        object.__setattr__(self, "_bounds", self._thick.bounds())

    @property
    def thick(self) -> ThickLine:
        return self._thick

    def crossed_by(self, a: Point, b: Point) -> bool:
        """Does movement a->b cross this gate within the angle window?"""
        x0, y0, x1, y1 = self._bounds
        if max(a[0], b[0]) < x0 or min(a[0], b[0]) > x1:
            return False
        if max(a[1], b[1]) < y0 or min(a[1], b[1]) > y1:
            return False
        return self._thick.crossed_by(
            a, b, min_angle_deg=self.min_angle_deg, max_angle_deg=self.max_angle_deg
        )

    def distance_to(self, p: Point) -> float:
        """Distance from ``p`` to the gate road axis."""
        return self.road.distance_to(p)


@dataclass(frozen=True)
class CrossingEvent:
    """One detected gate crossing of a trip segment."""

    gate: str
    index: int        # crossing happened between points[index] and [index+1]
    time_s: float     # timestamp of the fix before the crossing


def find_crossings(
    xys: list[Point],
    times: list[float],
    gates: list[Gate],
    vectorized: bool = False,
) -> list[CrossingEvent]:
    """All gate crossings of a point sequence, in time order.

    Consecutive hits of the same gate are collapsed into the first one, so
    a slow passage (several fixes inside the thick region) counts once.

    ``vectorized=True`` evaluates the bounding-box prefilter of every gate
    as one array comparison over the segment-endpoint columns (built once
    for all gates); only the few surviving movements pay for the exact
    thick-line test.  The bbox test is the same comparison
    :meth:`Gate.crossed_by` short-circuits on, so the detected events — and
    the consecutive-hit collapsing — are identical.
    """
    events: list[CrossingEvent] = []
    if vectorized and len(xys) >= 2 and gates:
        xy = np.asarray(xys, dtype=np.float64)
        ax, ay = xy[:-1, 0], xy[:-1, 1]
        bx, by = xy[1:, 0], xy[1:, 1]
        seg_xmin = np.minimum(ax, bx)
        seg_xmax = np.maximum(ax, bx)
        seg_ymin = np.minimum(ay, by)
        seg_ymax = np.maximum(ay, by)
        for gate in gates:
            x0, y0, x1, y1 = gate._bounds
            mask = (
                (seg_xmax >= x0) & (seg_xmin <= x1)
                & (seg_ymax >= y0) & (seg_ymin <= y1)
            )
            last_hit = -10
            for i in map(int, np.flatnonzero(mask)):
                if gate._thick.crossed_by(
                    xys[i], xys[i + 1],
                    min_angle_deg=gate.min_angle_deg,
                    max_angle_deg=gate.max_angle_deg,
                ):
                    if i - last_hit > 1:
                        events.append(
                            CrossingEvent(gate=gate.name, index=i, time_s=times[i])
                        )
                    last_hit = i
    else:
        for gate in gates:
            last_hit = -10
            for i in range(len(xys) - 1):
                if gate.crossed_by(xys[i], xys[i + 1]):
                    if i - last_hit > 1:
                        events.append(
                            CrossingEvent(gate=gate.name, index=i, time_s=times[i])
                        )
                    last_hit = i
    events.sort(key=lambda e: (e.time_s, e.index))
    if events:
        get_registry().counter("od.crossings_detected").inc(len(events))
    return events
