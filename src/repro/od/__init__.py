"""Origin-Destination analysis (paper Sec. IV.D).

Three gate roads (T, S, L) at the entry/exit points of downtown are
thickened ("thick geometry") and trip segments crossing them within an
angular window, first origin then destination, become *transitions*.
Filters reproduce the Table 3 funnel: crossing condition, studied OD
pairs, within-central-area, and the post-map-matching endpoint check.
"""

from repro.od.gates import CrossingEvent, Gate, find_crossings
from repro.od.transitions import (
    STUDIED_PAIRS,
    FunnelRow,
    SegmentExtraction,
    Transition,
    TransitionConfig,
    TransitionExtractor,
    endpoints_near_gates,
    post_filter_transition,
)

__all__ = [
    "CrossingEvent",
    "FunnelRow",
    "Gate",
    "STUDIED_PAIRS",
    "SegmentExtraction",
    "Transition",
    "TransitionConfig",
    "TransitionExtractor",
    "endpoints_near_gates",
    "find_crossings",
    "post_filter_transition",
]
