"""Transition extraction and the Table 3 funnel.

A *transition* is the part of a trip segment between an origin-gate
crossing and a destination-gate crossing, for the four studied ordered
pairs (T-L, L-T, T-S, S-T).  The funnel stages mirror Table 3:

1. *trip segments (total)* — all cleaned segments;
2. *filtered and cleaned* — segments crossing at least one thick gate
   road within the angle window;
3. *transitions total* — segments forming one of the studied ordered
   pairs (first origin, then destination);
4. *within city centre* — transitions whose route stays inside the
   central area between the two crossings;
5. *post-filtered* — transitions whose matched start and end fixes lie
   close to the origin/destination roads (applied after map matching).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cleaning.segmentation import TripSegment
from repro.geo.polygon import Polygon
from repro.obs import get_journal, get_logger, get_registry, span
from repro.od.gates import CrossingEvent, Gate, find_crossings

_log = get_logger(__name__)

#: The ordered OD pairs the paper studies.
STUDIED_PAIRS = (("T", "L"), ("L", "T"), ("T", "S"), ("S", "T"))


@dataclass(frozen=True)
class TransitionConfig:
    """Extraction parameters."""

    pairs: tuple[tuple[str, str], ...] = STUDIED_PAIRS
    post_filter_distance_m: float = 150.0

    def __post_init__(self) -> None:
        if self.post_filter_distance_m <= 0:
            raise ValueError("post_filter_distance_m must be positive")


@dataclass
class Transition:
    """One origin->destination transition of a trip segment."""

    segment: TripSegment
    origin: str
    destination: str
    origin_event: CrossingEvent
    destination_event: CrossingEvent
    within_centre: bool = False
    post_filtered_ok: bool | None = None  # set by the post-filter stage

    @property
    def direction(self) -> str:
        """The paper's direction label, e.g. ``"T-S"``."""
        return f"{self.origin}-{self.destination}"

    def point_slice(self) -> slice:
        """Indices of the segment's points that belong to the transition.

        Includes the fixes straddling both crossings.
        """
        return slice(self.origin_event.index, self.destination_event.index + 2)

    def points(self) -> list:
        return self.segment.points[self.point_slice()]


@dataclass(frozen=True)
class FunnelRow:
    """One car's row of Table 3."""

    car_id: int
    total_segments: int
    filtered_cleaned: int
    transitions_total: int
    within_centre: int
    post_filtered: int


@dataclass
class SegmentExtraction:
    """Funnel outcome of one trip segment — the extractor's unit of work.

    ``crossed`` means at least one gate crossing was found (funnel stage
    2); ``transition`` is set when a studied ordered pair was formed
    (stage 3), with ``within_centre`` already evaluated (stage 4).
    """

    car_id: int
    crossed: bool = False
    transition: Transition | None = None


@dataclass
class ExtractionResult:
    """Everything the extractor produces for a fleet."""

    transitions: list[Transition] = field(default_factory=list)
    funnel: list[FunnelRow] = field(default_factory=list)

    def by_direction(self) -> dict[str, list[Transition]]:
        out: dict[str, list[Transition]] = {}
        for t in self.transitions:
            out.setdefault(t.direction, []).append(t)
        return out


class TransitionExtractor:
    """Runs the funnel stages 1-4 (stage 5 needs matched routes)."""

    def __init__(
        self,
        gates: list[Gate],
        central_area: Polygon,
        config: TransitionConfig | None = None,
        vectorized: bool = True,
    ) -> None:
        self.gates = gates
        self.gates_by_name = {g.name: g for g in gates}
        self.central_area = central_area
        self.config = config or TransitionConfig()
        #: Run gate-crossing detection through the batched bbox prefilter
        #: (identical events; see :func:`repro.od.gates.find_crossings`).
        self.vectorized = vectorized

    def extract_segment(self, seg: TripSegment, to_xy) -> SegmentExtraction:
        """Run funnel stages 2-4 on one segment — pure and parallelisable."""
        with span(
            "extract_segment", detail=True, attrs={"segment_id": seg.segment_id}
        ):
            return self._extract_segment(seg, to_xy)

    def _extract_segment(self, seg: TripSegment, to_xy) -> SegmentExtraction:
        xys = [to_xy(p) for p in seg.points]
        times = [p.time_s for p in seg.points]
        events = find_crossings(xys, times, self.gates, vectorized=self.vectorized)
        if not events:
            return SegmentExtraction(car_id=seg.car_id)
        transition = self._first_studied_pair(seg, events)
        if transition is None:
            return SegmentExtraction(car_id=seg.car_id, crossed=True)
        transition.within_centre = self._within_centre(transition, xys)
        return SegmentExtraction(car_id=seg.car_id, crossed=True, transition=transition)

    def compute_units(
        self, segments: list[TripSegment], to_xy, executor=None
    ) -> list[SegmentExtraction]:
        """Per-segment funnel outcomes, serial or pooled.

        The compute half of :meth:`extract`, factored out so the shard
        store planner can run it over only the dirty segments and pass
        the folded whole back through ``extractions``.
        """
        if executor is not None and executor.parallel:
            return executor.extract_segments(segments)
        return [self.extract_segment(seg, to_xy) for seg in segments]

    def extract(
        self,
        segments: list[TripSegment],
        to_xy,
        executor=None,
        extractions: list[SegmentExtraction] | None = None,
    ) -> ExtractionResult:
        """Extract transitions from cleaned segments.

        ``to_xy`` converts a route point to plane coordinates.  Funnel rows
        carry stage counts per car; the post-filter column is left at the
        within-centre count until :func:`post_filter_transition` results
        are folded in by the caller (see
        :meth:`repro.experiments.study.OuluStudy.run`).

        ``executor`` is an optional :class:`repro.parallel.TripExecutor`;
        per-segment outcomes are folded in segment order either way, so
        parallel runs match serial ones exactly.  ``extractions``
        optionally supplies precomputed outcomes aligned with
        ``segments`` (the shard store's delta path) — the funnel fold is
        identical either way.
        """
        if extractions is None:
            extractions = self.compute_units(segments, to_xy, executor)
        per_car: dict[int, dict[str, int]] = {}
        transitions: list[Transition] = []
        journal = get_journal()
        for seg, extraction in zip(segments, extractions):
            stats = per_car.setdefault(
                extraction.car_id,
                {"total": 0, "filtered": 0, "transitions": 0, "centre": 0},
            )
            stats["total"] += 1
            transition = extraction.transition
            if journal.enabled:
                # Funnel stages 2-4 provenance per segment: did it cross a
                # gate, which studied pair did it form, did it stay inside
                # the centre — folded in segment order, so the lineage
                # stream is identical for serial and parallel runs.
                journal.emit(
                    "lineage",
                    unit="segment",
                    segment_id=seg.segment_id,
                    car_id=extraction.car_id,
                    gate_crossed=extraction.crossed,
                    direction=transition.direction if transition else None,
                    within_centre=bool(transition.within_centre)
                    if transition
                    else False,
                )
            if not extraction.crossed:
                continue
            stats["filtered"] += 1
            if transition is None:
                continue
            stats["transitions"] += 1
            if transition.within_centre:
                stats["centre"] += 1
                transitions.append(transition)
        funnel = [
            FunnelRow(
                car_id=car,
                total_segments=s["total"],
                filtered_cleaned=s["filtered"],
                transitions_total=s["transitions"],
                within_centre=s["centre"],
                post_filtered=s["centre"],  # refined by the post-filter stage
            )
            for car, s in sorted(per_car.items())
        ]
        # Mirror the fleet-level Table 3 funnel into the metrics registry.
        registry = get_registry()
        totals = {
            "od.segments_total": sum(r.total_segments for r in funnel),
            "od.filtered_cleaned": sum(r.filtered_cleaned for r in funnel),
            "od.transitions_total": sum(r.transitions_total for r in funnel),
            "od.within_centre": sum(r.within_centre for r in funnel),
        }
        for name, value in totals.items():
            registry.counter(name).inc(value)
        _log.info(
            "transition extraction complete",
            extra={**{k.split(".")[1]: v for k, v in totals.items()},
                   "cars": len(funnel)},
        )
        return ExtractionResult(transitions=transitions, funnel=funnel)

    def _first_studied_pair(
        self, seg: TripSegment, events: list[CrossingEvent]
    ) -> Transition | None:
        """First ordered studied pair among the crossing events."""
        for i, origin in enumerate(events):
            for destination in events[i + 1:]:
                if destination.gate == origin.gate:
                    continue
                if (origin.gate, destination.gate) in self.config.pairs:
                    return Transition(
                        segment=seg,
                        origin=origin.gate,
                        destination=destination.gate,
                        origin_event=origin,
                        destination_event=destination,
                    )
        return None

    def _within_centre(self, transition: Transition, xys: list) -> bool:
        """All fixes strictly between the crossings are inside the centre."""
        i0 = transition.origin_event.index + 1
        i1 = transition.destination_event.index + 1
        return all(self.central_area.contains(xys[i]) for i in range(i0, i1))


def endpoints_near_gates(
    origin_gate: Gate,
    dest_gate: Gate,
    matched_start_xy,
    matched_end_xy,
    config: TransitionConfig | None = None,
) -> bool:
    """Stage 5 predicate: matched endpoints lie near the OD roads.

    Pure (no Transition mutation) so map-matching workers can evaluate it
    without holding the orchestrator's transition objects; the kept/
    rejected counters go to the ambient registry.
    """
    config = config or TransitionConfig()
    d0 = origin_gate.distance_to(matched_start_xy)
    d1 = dest_gate.distance_to(matched_end_xy)
    ok = (
        d0 <= origin_gate.half_width_m + config.post_filter_distance_m
        and d1 <= dest_gate.half_width_m + config.post_filter_distance_m
    )
    get_registry().counter(
        "od.post_filter_kept" if ok else "od.post_filter_rejected"
    ).inc()
    return ok


def post_filter_transition(
    transition: Transition,
    matched_start_xy,
    matched_end_xy,
    gates_by_name: dict[str, Gate],
    config: TransitionConfig | None = None,
) -> bool:
    """Stage 5: matched endpoints must lie near the OD roads.

    The paper map-matches the within-centre transitions and keeps those
    whose start and end route points are close to the origin/destination
    roads.  Sparse event sampling means the first fix after a crossing can
    be far from the gate; such transitions are discarded.
    """
    ok = endpoints_near_gates(
        gates_by_name[transition.origin],
        gates_by_name[transition.destination],
        matched_start_xy,
        matched_end_xy,
        config,
    )
    transition.post_filtered_ok = ok
    return ok
