"""repro — reproduction of "Revealing reliable information from taxi
traces: from raw data to information discovery" (ICDE 2022).

The package rebuilds the paper's full pipeline on synthetic substrates:

* :mod:`repro.geo` — geodesy and planar geometry;
* :mod:`repro.store` — an embedded geospatial table store (PostGIS
  substitute);
* :mod:`repro.roadnet` — the Digiroad-style map database, map
  preparation, routing, and the synthetic downtown-Oulu generator;
* :mod:`repro.traces` — the taxi fleet simulator (Driveco substitute) and
  trace data model;
* :mod:`repro.cleaning` — ordering repair, filters and Table 2
  segmentation;
* :mod:`repro.matching` — incremental and HMM map matching with Dijkstra
  gap filling;
* :mod:`repro.od` — thick-geometry gates and transition extraction;
* :mod:`repro.features` — map-attribute fusion, route statistics and the
  200 m analysis grid;
* :mod:`repro.stats` — descriptive stats, OLS and the REML random
  intercept mixed model;
* :mod:`repro.weather` — seasons and the FMI road-weather substitute;
* :mod:`repro.experiments` — the end-to-end study plus generators for
  every table and figure of the evaluation;
* :mod:`repro.obs` — structured logging, the metrics registry and stage
  tracing that make every pipeline run auditable.

Quickstart::

    from repro.experiments import OuluStudy, render_funnel

    result = OuluStudy().run()
    print(render_funnel(result))          # paper Table 3
"""

from repro.experiments.study import OuluStudy, StudyConfig, StudyResult

__version__ = "1.0.0"

__all__ = ["OuluStudy", "StudyConfig", "StudyResult", "__version__"]
