"""Map-matching evaluation against ground truth.

Formalises the accuracy measures the tests and benches use: edge-set
Jaccard similarity, route length error, and a fleet-level evaluation that
pairs cleaned segments with the simulator's ground-truth runs by car and
time overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cleaning.segmentation import TripSegment
from repro.matching.types import MatchedRoute
from repro.roadnet.graph import RoadGraph
from repro.traces.simulator import CustomerRun


def edge_jaccard(route: MatchedRoute, truth: CustomerRun) -> float:
    """Edge-set Jaccard similarity between a match and its true run."""
    got = set(route.edge_ids)
    expected = set(truth.edge_ids)
    if not got and not expected:
        return 1.0
    return len(got & expected) / len(got | expected)


def length_error(route: MatchedRoute, truth: CustomerRun, graph: RoadGraph) -> float:
    """Relative route length error vs the true driven path length."""
    if truth.path_length_m <= 0:
        return 0.0
    return abs(route.length_m(graph) - truth.path_length_m) / truth.path_length_m


def truth_for_segment(runs: list[CustomerRun], segment: TripSegment) -> CustomerRun | None:
    """The same-car run overlapping a segment longest in time."""
    best: CustomerRun | None = None
    overlap = 0.0
    for run in runs:
        if run.car_id != segment.car_id:
            continue
        lo = max(run.start_time_s, segment.start_time_s)
        hi = min(run.end_time_s, segment.end_time_s)
        if hi - lo > overlap:
            overlap = hi - lo
            best = run
    return best


@dataclass(frozen=True)
class MatchEvaluation:
    """Aggregate matcher accuracy over a set of segments."""

    n_segments: int
    n_matched: int
    n_evaluated: int
    mean_jaccard: float
    mean_length_error: float
    mean_match_distance_m: float

    @property
    def match_rate(self) -> float:
        return self.n_matched / self.n_segments if self.n_segments else 0.0


def evaluate_matcher(
    matcher,
    segments: list[TripSegment],
    runs: list[CustomerRun],
    graph: RoadGraph,
    to_xy,
) -> MatchEvaluation:
    """Match every segment and score against the paired ground truth.

    ``matcher`` is anything with the
    ``match(points, to_xy, segment_id, car_id)`` interface (incremental or
    HMM).  Segments without a paired run are matched but not scored.
    """
    n_matched = 0
    jaccards: list[float] = []
    length_errors: list[float] = []
    match_distances: list[float] = []
    for segment in segments:
        route = matcher.match(segment.points, to_xy, segment.segment_id,
                              segment.car_id)
        if route is None or not route.edge_sequence:
            continue
        n_matched += 1
        match_distances.append(route.mean_match_distance_m)
        truth = truth_for_segment(runs, segment)
        if truth is None:
            continue
        jaccards.append(edge_jaccard(route, truth))
        length_errors.append(length_error(route, truth, graph))
    return MatchEvaluation(
        n_segments=len(segments),
        n_matched=n_matched,
        n_evaluated=len(jaccards),
        mean_jaccard=sum(jaccards) / len(jaccards) if jaccards else 0.0,
        mean_length_error=(
            sum(length_errors) / len(length_errors) if length_errors else 0.0
        ),
        mean_match_distance_m=(
            sum(match_distances) / len(match_distances) if match_distances else 0.0
        ),
    )
