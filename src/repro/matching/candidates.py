"""Candidate generation and scoring for map matching.

Candidates are edges near a fix, scored with the Brakatsoulas et al.
distance and orientation functions:

* distance score ``s_d = mu_d - a * d^n`` (mu_d = 10, a = 0.17, n = 1.4);
* orientation score ``s_o = mu_o * cos(alpha)`` where ``alpha`` is the
  angle between the movement direction and the edge heading (mu_o = 10).

The paper enhances matching with map direction data: movement against a
one-way edge's only allowed direction incurs a penalty, so the matcher
prefers the legal carriageway.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.geo.geometry import Point
from repro.roadnet.graph import RoadEdge, RoadGraph


@dataclass(frozen=True)
class CandidateConfig:
    """Candidate search and scoring parameters."""

    radius_m: float = 60.0
    max_candidates: int = 6
    mu_distance: float = 10.0
    distance_a: float = 0.17
    distance_exp: float = 1.4
    mu_orientation: float = 10.0
    oneway_penalty: float = 8.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0 or self.max_candidates < 1:
            raise ValueError("radius_m and max_candidates must be positive")


@dataclass(frozen=True)
class Candidate:
    """A scored candidate match of one fix onto one edge."""

    edge: RoadEdge
    arc_m: float
    snapped_xy: Point
    distance_m: float
    score: float


def _distance_score(d: float, config: CandidateConfig) -> float:
    return config.mu_distance - config.distance_a * d**config.distance_exp


def _orientation_score(
    movement: Point | None, edge: RoadEdge, arc: float, config: CandidateConfig
) -> float:
    """Orientation score plus the one-way legality penalty."""
    if movement is None or movement == (0.0, 0.0):
        return 0.0
    heading = edge.geometry.heading_at(arc)
    norm = math.hypot(*movement)
    if norm == 0.0:
        return 0.0
    cosang = (movement[0] * heading[0] + movement[1] * heading[1]) / norm
    both_ways = edge.forward_allowed and edge.backward_allowed
    if both_ways:
        score = config.mu_orientation * abs(cosang)
    else:
        # One-way: the sign matters. Forward-only wants positive cos
        # (movement along u->v geometry), backward-only negative.
        directed = cosang if edge.forward_allowed else -cosang
        score = config.mu_orientation * directed
        if directed < -0.2:
            score -= config.oneway_penalty
    return score


def candidates_for_point(
    graph: RoadGraph,
    xy: Point,
    movement: Point | None,
    config: CandidateConfig | None = None,
) -> list[Candidate]:
    """Scored candidates for one fix, best first.

    ``movement`` is the local direction of travel (from neighbouring
    fixes); None disables the orientation component (e.g. for a stationary
    vehicle).
    """
    config = config or CandidateConfig()
    out: list[Candidate] = []
    for edge in graph.edges_near(xy, config.radius_m):
        snapped, arc, dist = edge.geometry.project(xy)
        score = _distance_score(dist, config) + _orientation_score(
            movement, edge, arc, config
        )
        out.append(
            Candidate(edge=edge, arc_m=arc, snapped_xy=snapped, distance_m=dist, score=score)
        )
    # Edge id breaks score ties, so the ranking is a total order and does
    # not depend on the spatial index's iteration order.
    out.sort(key=lambda c: (-c.score, c.edge.edge_id))
    return out[: config.max_candidates]


class EdgeArrays:
    """Flattened per-segment geometry of a whole road graph.

    Every edge's polyline segments are concatenated into parallel columns
    (endpoints, deltas, cumulative arc lengths, unit headings) so that the
    batched candidate generator can project many fixes onto many edges in
    a handful of array operations.  Values are byte-identical to what the
    per-edge :class:`~repro.geo.geometry.LineString` caches hold — the
    headings are normalised with ``math.hypot`` exactly as
    ``LineString.heading_at`` does.
    """

    __slots__ = (
        "edges", "slot_by_edge_id", "row_offset", "n_segs", "length",
        "forward", "backward", "ax", "ay", "dx", "dy", "denom",
        "seg_cum0", "seg_len", "hx", "hy",
    )

    def __init__(self, graph: RoadGraph) -> None:
        edges = graph.edges()
        n_edges = len(edges)
        self.edges = edges
        self.slot_by_edge_id = {e.edge_id: slot for slot, e in enumerate(edges)}
        self.n_segs = np.fromiter(
            (len(e.geometry) - 1 for e in edges), dtype=np.int64, count=n_edges
        )
        self.row_offset = np.zeros(n_edges, dtype=np.int64)
        if n_edges > 1:
            np.cumsum(self.n_segs[:-1], out=self.row_offset[1:])
        self.length = np.fromiter(
            (e.geometry.length for e in edges), dtype=np.float64, count=n_edges
        )
        self.forward = np.fromiter(
            (e.forward_allowed for e in edges), dtype=bool, count=n_edges
        )
        self.backward = np.fromiter(
            (e.backward_allowed for e in edges), dtype=bool, count=n_edges
        )
        total = int(self.n_segs.sum())
        self.ax = np.empty(total)
        self.ay = np.empty(total)
        self.dx = np.empty(total)
        self.dy = np.empty(total)
        self.denom = np.empty(total)
        self.seg_cum0 = np.empty(total)
        self.seg_len = np.empty(total)
        self.hx = np.empty(total)
        self.hy = np.empty(total)
        for slot, edge in enumerate(edges):
            geometry = edge.geometry
            coords = geometry.coords
            lo = int(self.row_offset[slot])
            hi = lo + int(self.n_segs[slot])
            dx = np.diff(coords[:, 0])
            dy = np.diff(coords[:, 1])
            self.ax[lo:hi] = coords[:-1, 0]
            self.ay[lo:hi] = coords[:-1, 1]
            self.dx[lo:hi] = dx
            self.dy[lo:hi] = dy
            denom = dx * dx + dy * dy
            denom[denom == 0.0] = 1.0
            self.denom[lo:hi] = denom
            cumlen = geometry._cumlen  # same cache LineString.project reads
            self.seg_cum0[lo:hi] = cumlen[:-1]
            self.seg_len[lo:hi] = np.diff(cumlen)
            for k in range(hi - lo):
                norm = math.hypot(float(dx[k]), float(dy[k]))
                if norm == 0.0:
                    self.hx[lo + k] = 0.0
                    self.hy[lo + k] = 0.0
                else:
                    self.hx[lo + k] = float(dx[k]) / norm
                    self.hy[lo + k] = float(dy[k]) / norm


_EDGE_ARRAYS: "weakref.WeakKeyDictionary[RoadGraph, tuple[int, EdgeArrays]]" = (
    weakref.WeakKeyDictionary()
)


def edge_arrays_for(graph: RoadGraph) -> EdgeArrays:
    """The graph's :class:`EdgeArrays`, built once and cached per graph.

    The cache invalidates on edge-count change (graphs only ever grow),
    so a graph still under construction is safe to query.
    """
    cached = _EDGE_ARRAYS.get(graph)
    if cached is not None and cached[0] == graph.edge_count:
        return cached[1]
    arrays = EdgeArrays(graph)
    _EDGE_ARRAYS[graph] = (graph.edge_count, arrays)
    return arrays


def candidates_for_points(
    graph: RoadGraph,
    xys: list[Point],
    movements: list[Point | None],
    config: CandidateConfig | None = None,
) -> list[list[Candidate]]:
    """Scored candidates for a whole fix sequence — the batched fast path.

    Returns one best-first candidate list per fix, identical to calling
    :func:`candidates_for_point` per fix: the projection, both score terms
    and the radius refinement run the same floating-point operations in
    the same order, just over (fix, edge) pair columns, and the final
    ranking uses the same total-order ``(-score, edge_id)`` key.
    """
    config = config or CandidateConfig()
    n_points = len(xys)
    out: list[list[Candidate]] = [[] for _ in range(n_points)]
    if n_points == 0:
        return out
    arrays = edge_arrays_for(graph)
    per_point = graph.edges_near_many(xys, config.radius_m, exact=False)
    n_edges = np.fromiter((len(lst) for lst in per_point), dtype=np.int64, count=n_points)
    n_pairs = int(n_edges.sum())
    if n_pairs == 0:
        return out

    # -- pair expansion: one row per (fix, bbox-candidate edge) segment.
    pair_point = np.repeat(np.arange(n_points, dtype=np.int64), n_edges)
    pair_slot = np.fromiter(
        (arrays.slot_by_edge_id[e.edge_id] for lst in per_point for e in lst),
        dtype=np.int64,
        count=n_pairs,
    )
    counts = arrays.n_segs[pair_slot]
    row_start = arrays.row_offset[pair_slot]
    offsets = np.zeros(n_pairs, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    total = int(counts.sum())
    rows = np.repeat(row_start - offsets, counts) + np.arange(total, dtype=np.int64)

    px = np.fromiter((p[0] for p in xys), dtype=np.float64, count=n_points)
    py = np.fromiter((p[1] for p in xys), dtype=np.float64, count=n_points)
    pxr = np.repeat(px[pair_point], counts)
    pyr = np.repeat(py[pair_point], counts)

    # -- batched point-to-segment projection (LineString.project, columnar).
    axr = arrays.ax[rows]
    ayr = arrays.ay[rows]
    dxr = arrays.dx[rows]
    dyr = arrays.dy[rows]
    t = ((pxr - axr) * dxr + (pyr - ayr) * dyr) / arrays.denom[rows]
    np.clip(t, 0.0, 1.0, out=t)
    cx = axr + t * dxr
    cy = ayr + t * dyr
    d2 = (pxr - cx) ** 2 + (pyr - cy) ** 2

    # First-occurrence argmin per pair (np.argmin picks the first minimum;
    # the grouped equivalent is the first row matching the group minimum).
    min_d2 = np.minimum.reduceat(d2, offsets)
    flat_min = np.flatnonzero(d2 == np.repeat(min_d2, counts))
    grp = np.repeat(np.arange(n_pairs, dtype=np.int64), counts)[flat_min]
    __, first = np.unique(grp, return_index=True)
    best = flat_min[first]  # one row per pair, in pair order
    best_row = rows[best]
    t_best = t[best]
    arc = arrays.seg_cum0[best_row] + t_best * arrays.seg_len[best_row]
    dist = np.sqrt(d2[best])
    keep = dist <= config.radius_m  # edges_near's exact refinement

    # -- heading at the snapped arc (LineString.heading_at, columnar): the
    # searchsorted(side="right") index equals the count of cumulative
    # lengths <= arc, computed per pair with one grouped reduction.
    length_p = arrays.length[pair_slot]
    arc_c = np.minimum(length_p, np.maximum(0.0, arc))
    below = (arrays.seg_cum0[rows] <= np.repeat(arc_c, counts)).astype(np.int64)
    seg_i = np.add.reduceat(below, offsets) + (length_p <= arc_c) - 1
    np.clip(seg_i, 0, counts - 1, out=seg_i)
    head_row = row_start + seg_i
    hx = arrays.hx[head_row]
    hy = arrays.hy[head_row]

    # -- scores (same expressions as the scalar helpers).
    mx = np.zeros(n_points)
    my = np.zeros(n_points)
    norm = np.ones(n_points)
    have_movement = np.zeros(n_points, dtype=bool)
    for j, movement in enumerate(movements):
        if movement is None:
            continue
        m_norm = math.hypot(movement[0], movement[1])
        if m_norm == 0.0:
            continue
        mx[j] = movement[0]
        my[j] = movement[1]
        norm[j] = m_norm
        have_movement[j] = True
    cosang = (mx[pair_point] * hx + my[pair_point] * hy) / norm[pair_point]
    fwd = arrays.forward[pair_slot]
    both_ways = fwd & arrays.backward[pair_slot]
    directed = np.where(fwd, cosang, -cosang)
    orientation = np.where(
        both_ways,
        config.mu_orientation * np.abs(cosang),
        np.where(
            directed < -0.2,
            config.mu_orientation * directed - config.oneway_penalty,
            config.mu_orientation * directed,
        ),
    )
    orientation = np.where(have_movement[pair_point], orientation, 0.0)

    # -- per-fix assembly, ranked by the same total-order key.  The
    # distance score's pow runs per kept pair in Python: NumPy's SIMD
    # pow kernel is 1 ulp off libm for ~5% of inputs, which would break
    # bitwise score parity with the scalar path (and costs nothing —
    # the scalar path pays exactly one pow per refined candidate too).
    pt_start = np.zeros(n_points + 1, dtype=np.int64)
    np.cumsum(n_edges, out=pt_start[1:])
    snapped_x = cx[best]
    snapped_y = cy[best]
    for j in range(n_points):
        lo, hi = int(pt_start[j]), int(pt_start[j + 1])
        cands = []
        for k in range(lo, hi):
            if not keep[k]:
                continue
            d = float(dist[k])
            score = _distance_score(d, config) + float(orientation[k])
            cands.append(
                Candidate(
                    edge=per_point[j][k - lo],
                    arc_m=float(arc[k]),
                    snapped_xy=(float(snapped_x[k]), float(snapped_y[k])),
                    distance_m=d,
                    score=score,
                )
            )
        cands.sort(key=lambda c: (-c.score, c.edge.edge_id))
        out[j] = cands[: config.max_candidates]
    return out
