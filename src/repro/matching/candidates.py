"""Candidate generation and scoring for map matching.

Candidates are edges near a fix, scored with the Brakatsoulas et al.
distance and orientation functions:

* distance score ``s_d = mu_d - a * d^n`` (mu_d = 10, a = 0.17, n = 1.4);
* orientation score ``s_o = mu_o * cos(alpha)`` where ``alpha`` is the
  angle between the movement direction and the edge heading (mu_o = 10).

The paper enhances matching with map direction data: movement against a
one-way edge's only allowed direction incurs a penalty, so the matcher
prefers the legal carriageway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.geometry import Point
from repro.roadnet.graph import RoadEdge, RoadGraph


@dataclass(frozen=True)
class CandidateConfig:
    """Candidate search and scoring parameters."""

    radius_m: float = 60.0
    max_candidates: int = 6
    mu_distance: float = 10.0
    distance_a: float = 0.17
    distance_exp: float = 1.4
    mu_orientation: float = 10.0
    oneway_penalty: float = 8.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0 or self.max_candidates < 1:
            raise ValueError("radius_m and max_candidates must be positive")


@dataclass(frozen=True)
class Candidate:
    """A scored candidate match of one fix onto one edge."""

    edge: RoadEdge
    arc_m: float
    snapped_xy: Point
    distance_m: float
    score: float


def _distance_score(d: float, config: CandidateConfig) -> float:
    return config.mu_distance - config.distance_a * d**config.distance_exp


def _orientation_score(
    movement: Point | None, edge: RoadEdge, arc: float, config: CandidateConfig
) -> float:
    """Orientation score plus the one-way legality penalty."""
    if movement is None or movement == (0.0, 0.0):
        return 0.0
    heading = edge.geometry.heading_at(arc)
    norm = math.hypot(*movement)
    if norm == 0.0:
        return 0.0
    cosang = (movement[0] * heading[0] + movement[1] * heading[1]) / norm
    both_ways = edge.forward_allowed and edge.backward_allowed
    if both_ways:
        score = config.mu_orientation * abs(cosang)
    else:
        # One-way: the sign matters. Forward-only wants positive cos
        # (movement along u->v geometry), backward-only negative.
        directed = cosang if edge.forward_allowed else -cosang
        score = config.mu_orientation * directed
        if directed < -0.2:
            score -= config.oneway_penalty
    return score


def candidates_for_point(
    graph: RoadGraph,
    xy: Point,
    movement: Point | None,
    config: CandidateConfig | None = None,
) -> list[Candidate]:
    """Scored candidates for one fix, best first.

    ``movement`` is the local direction of travel (from neighbouring
    fixes); None disables the orientation component (e.g. for a stationary
    vehicle).
    """
    config = config or CandidateConfig()
    out: list[Candidate] = []
    for edge in graph.edges_near(xy, config.radius_m):
        snapped, arc, dist = edge.geometry.project(xy)
        score = _distance_score(dist, config) + _orientation_score(
            movement, edge, arc, config
        )
        out.append(
            Candidate(edge=edge, arc_m=arc, snapped_xy=snapped, distance_m=dist, score=score)
        )
    out.sort(key=lambda c: -c.score)
    return out[: config.max_candidates]
