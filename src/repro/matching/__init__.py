"""Map matching (paper Sec. IV.E).

Aligns cleaned route points onto the road graph:

* :mod:`repro.matching.candidates` — candidate edges near a fix, scored by
  distance and orientation, honouring one-way directions from the map
  ("enhanced with information retrieved from the digital map");
* :mod:`repro.matching.incremental` — the incremental matcher of
  Brakatsoulas et al. (VLDB'05) with look-ahead, the paper's choice;
* :mod:`repro.matching.hmm` — an HMM/Viterbi matcher as the modern
  baseline for comparison benches;
* :mod:`repro.matching.gapfill` — Dijkstra shortest-path gap filling
  between distant fixes (the pgRouting step);
* :mod:`repro.matching.types` — matched points and routes.
"""

from repro.matching.candidates import (
    Candidate,
    CandidateConfig,
    candidates_for_point,
    candidates_for_points,
)
from repro.matching.evaluate import (
    MatchEvaluation,
    edge_jaccard,
    evaluate_matcher,
    truth_for_segment,
)
from repro.matching.gapfill import connect_matches
from repro.matching.hmm import HmmConfig, HmmMatcher
from repro.matching.incremental import (
    STATE_SCHEMA_VERSION,
    IncrementalConfig,
    IncrementalMatcher,
    MatcherState,
)
from repro.matching.types import (
    MatchedPoint,
    MatchedRoute,
    edge_entries,
    edge_exits,
    movement_directions,
)

__all__ = [
    "Candidate",
    "CandidateConfig",
    "HmmConfig",
    "HmmMatcher",
    "IncrementalConfig",
    "IncrementalMatcher",
    "MatchEvaluation",
    "MatchedPoint",
    "MatchedRoute",
    "MatcherState",
    "STATE_SCHEMA_VERSION",
    "candidates_for_point",
    "candidates_for_points",
    "connect_matches",
    "edge_entries",
    "edge_exits",
    "edge_jaccard",
    "evaluate_matcher",
    "movement_directions",
    "truth_for_segment",
]
