"""Gap filling — the pgRouting Dijkstra step of the paper.

Event-based sampling leaves fixes far apart, so consecutive matched edges
are often not adjacent.  :func:`connect_matches` reconstructs the full
driven edge sequence: for every hop between distinct matched edges it
evaluates all legal exit/entry endpoint combinations, routes the gap with
Dijkstra, and picks the cheapest consistent traversal, honouring one-way
directions throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.types import MatchedRoute
from repro.obs import get_registry
from repro.roadnet.graph import RoadEdge, RoadGraph
from repro.roadnet.routing import RouteCache, cached_shortest_path


@dataclass
class _Run:
    """Consecutive matched points on one edge, compressed."""

    edge_id: int
    first_arc: float
    last_arc: float


def _compress(route: MatchedRoute) -> list[_Run]:
    runs: list[_Run] = []
    for m in route.matched:
        if runs and runs[-1].edge_id == m.edge_id:
            runs[-1].last_arc = m.arc_m
        else:
            runs.append(_Run(edge_id=m.edge_id, first_arc=m.arc_m, last_arc=m.arc_m))
    return runs


def _legal_exits(edge: RoadEdge, entry_node: int | None) -> list[int]:
    """Endpoints the vehicle may leave ``edge`` through.

    If the entry endpoint is known the exit is the other one; otherwise
    one-way constraints decide (a forward-only edge is always exited at
    ``v``).
    """
    if entry_node is not None:
        return [edge.other(entry_node)]
    exits = []
    if edge.forward_allowed:
        exits.append(edge.v)
    if edge.backward_allowed:
        exits.append(edge.u)
    return exits or [edge.v]


def _legal_entries(edge: RoadEdge) -> list[int]:
    entries = []
    if edge.forward_allowed:
        entries.append(edge.u)
    if edge.backward_allowed:
        entries.append(edge.v)
    return entries or [edge.u]


def _arc_to_endpoint(edge: RoadEdge, arc: float, endpoint: int) -> float:
    return edge.length - arc if endpoint == edge.v else arc


def connect_matches(
    graph: RoadGraph,
    route: MatchedRoute,
    max_cost_m: float = 2_000.0,
    route_cache: RouteCache | None = None,
    engine=None,
) -> MatchedRoute:
    """Fill the matched route's edge sequence in place and return it.

    ``route_cache`` memoises the shortest-path sub-queries; it never
    changes the resulting edge sequence (see :func:`cached_shortest_path`).
    ``engine`` selects what answers cache misses — the default flat
    Dijkstra, ``"astar"``/``"bidirectional"``, or a prepared
    :class:`~repro.roadnet.ch.CHEngine`; every engine returns optimal
    costs, so gap decisions are identical up to equal-cost path ties.
    """
    registry = get_registry()
    registry.counter("matching.gapfill_calls").inc()
    runs = _compress(route)
    if not runs:
        route.edge_sequence = []
        return route
    if len(runs) == 1:
        edge = graph.edge(runs[0].edge_id)
        forward = runs[0].last_arc >= runs[0].first_arc
        from_node = edge.u if forward else edge.v
        if not edge.allows(from_node):
            from_node = edge.other(from_node)
        route.edge_sequence = [(edge.edge_id, from_node)]
        return route

    sequence: list[tuple[int, int]] = []
    gaps = 0
    entry_node: int | None = None
    for k in range(len(runs) - 1):
        e1 = graph.edge(runs[k].edge_id)
        e2 = graph.edge(runs[k + 1].edge_id)
        best: tuple[float, int, int, tuple[int, ...], tuple[int, ...]] | None = None
        for exit1 in _legal_exits(e1, entry_node):
            d1 = _arc_to_endpoint(e1, runs[k].last_arc, exit1)
            for entry2 in _legal_entries(e2):
                d2 = runs[k + 1].first_arc if entry2 == e2.u else (
                    e2.length - runs[k + 1].first_arc
                )
                if exit1 == entry2:
                    cost = d1 + d2
                    candidate = (cost, exit1, entry2, (), ())
                else:
                    path = cached_shortest_path(
                        graph, exit1, entry2, weight="length",
                        cache=route_cache, engine=engine,
                    )
                    if not path.found or path.cost > max_cost_m:
                        continue
                    candidate = (d1 + path.cost + d2, exit1, entry2, path.nodes, path.edges)
                if best is None or candidate[0] < best[0]:
                    best = candidate
        if best is None:
            # Unroutable gap: keep the traversal of e1 with any legal
            # direction and restart the chain.
            from_node = entry_node if entry_node is not None else _legal_entries(e1)[0]
            sequence.append((e1.edge_id, from_node))
            entry_node = None
            gaps += 1
            registry.counter("matching.unroutable_gaps").inc()
            continue
        __, exit1, entry2, path_nodes, path_edges = best
        sequence.append((e1.edge_id, e1.other(exit1)))
        if path_edges:
            gaps += 1
            for node, edge_id in zip(path_nodes[:-1], path_edges):
                # Skip a self-transition back onto e2 (shouldn't happen, but
                # keeps the sequence free of duplicates if Dijkstra routes
                # through e2's own endpoints).
                sequence.append((edge_id, node))
        entry_node = entry2
    last = graph.edge(runs[-1].edge_id)
    from_node = entry_node if entry_node is not None else _legal_entries(last)[0]
    sequence.append((last.edge_id, from_node))
    route.edge_sequence = _dedupe(sequence)
    route.gaps_filled = gaps
    registry.counter("matching.gaps_filled").inc(gaps)
    return route


def _dedupe(sequence: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Drop exact consecutive duplicates (same edge, same direction)."""
    out: list[tuple[int, int]] = []
    for item in sequence:
        if out and out[-1] == item:
            continue
        out.append(item)
    return out
