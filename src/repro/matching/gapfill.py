"""Gap filling — the pgRouting Dijkstra step of the paper.

Event-based sampling leaves fixes far apart, so consecutive matched edges
are often not adjacent.  :func:`connect_matches` reconstructs the full
driven edge sequence: for every hop between distinct matched edges it
evaluates all legal exit/entry endpoint combinations, routes the gap with
Dijkstra, and picks the cheapest consistent traversal, honouring one-way
directions throughout.

With a many-to-many capable engine (a prepared
:class:`~repro.roadnet.ch.CHEngine`) and ``batch_routing=True``, every
gap query of the trip is collected up front and resolved through one
:class:`~repro.roadnet.routing.RouteBatch` call instead of one engine
query per endpoint combination; the per-gap decision loop then reads the
pre-resolved answers.  The batch answers are bitwise-identical to the
point-to-point queries, so the resulting edge sequence is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import maybe_inject
from repro.matching.types import MatchedRoute, edge_entries, edge_exits
from repro.obs import get_registry
from repro.roadnet.graph import RoadEdge, RoadGraph
from repro.roadnet.routing import RouteBatch, RouteCache, cached_shortest_path


@dataclass
class _Run:
    """Consecutive matched points on one edge, compressed."""

    edge_id: int
    first_arc: float
    last_arc: float


def _compress(route: MatchedRoute) -> list[_Run]:
    runs: list[_Run] = []
    for m in route.matched:
        if runs and runs[-1].edge_id == m.edge_id:
            runs[-1].last_arc = m.arc_m
        else:
            runs.append(_Run(edge_id=m.edge_id, first_arc=m.arc_m, last_arc=m.arc_m))
    return runs


def _legal_exits(edge: RoadEdge, entry_node: int | None) -> list[int]:
    """Endpoints the vehicle may leave ``edge`` through.

    If the entry endpoint is known the exit is the other one; otherwise
    one-way constraints decide (a forward-only edge is always exited at
    ``v``).
    """
    if entry_node is not None:
        return [edge.other(entry_node)]
    return edge_exits(edge)


def _legal_entries(edge: RoadEdge) -> list[int]:
    return edge_entries(edge)


def _arc_to_endpoint(edge: RoadEdge, arc: float, endpoint: int) -> float:
    return edge.length - arc if endpoint == edge.v else arc


def _collect_gap_pairs(
    graph: RoadGraph, runs: list[_Run]
) -> list[tuple[int, int]]:
    """Every ``(exit, entry)`` pair the gap loop *could* route.

    The loop restricts exits to the endpoint opposite the chain's entry
    node, but the chain state is only known while iterating — so the
    batch covers a superset.  It is still tight: a chain entry node is
    always a legal entry of ``e1``, so every exit the loop can pick is
    either in ``_legal_exits(e1, None)`` (chain restart) or the endpoint
    opposite a legal entry — both sets collapse to the same single node
    for a one-way edge, halving the pairs a ``{u, v}`` superset would
    route.  Direct hand-offs (``exit == entry``) never route and are
    skipped.  Duplicates are *not* collapsed here —
    :meth:`~repro.roadnet.routing.RouteBatch.resolve` dedupes anyway,
    and this enumeration runs for every trip, so it stays branch-light:
    exits/entries come straight from the one-way flags instead of the
    list-building ``_legal_*`` helpers the decision loop uses.
    """
    endpoints = _edge_endpoints(graph)
    pairs: list[tuple[int, int]] = []
    for k in range(len(runs) - 1):
        exits = endpoints[runs[k].edge_id][0]
        entries = endpoints[runs[k + 1].edge_id][1]
        for exit1 in exits:
            for entry2 in entries:
                if exit1 != entry2:
                    pairs.append((exit1, entry2))
    return pairs


def _edge_endpoints(
    graph: RoadGraph,
) -> dict[int, tuple[tuple[int, ...], tuple[int, ...]]]:
    """Per-edge (batchable exits, legal entries), memoised on the graph.

    Derived once from the immutable one-way flags; gap-pair collection
    runs for every trip, so this turns it into pure dict reads.
    """
    memo = getattr(graph, "_gapfill_endpoints", None)
    if memo is None:
        memo = {}
        for edge in graph.edges():
            if edge.forward_allowed:
                exits = (edge.v, edge.u) if edge.backward_allowed else (edge.v,)
            else:
                exits = (edge.u,) if edge.backward_allowed else (edge.v,)
            if edge.forward_allowed:
                entries = (edge.u, edge.v) if edge.backward_allowed else (edge.u,)
            else:
                entries = (edge.v,) if edge.backward_allowed else (edge.u,)
            memo[edge.edge_id] = (exits, entries)
        graph._gapfill_endpoints = memo
    return memo


def connect_matches(
    graph: RoadGraph,
    route: MatchedRoute,
    max_cost_m: float = 2_000.0,
    route_cache: RouteCache | None = None,
    engine=None,
    batch_routing: bool = True,
) -> MatchedRoute:
    """Fill the matched route's edge sequence in place and return it.

    ``route_cache`` memoises the shortest-path sub-queries; it never
    changes the resulting edge sequence (see :func:`cached_shortest_path`).
    ``engine`` selects what answers cache misses — the default flat
    Dijkstra, ``"astar"``/``"bidirectional"``, or a prepared
    :class:`~repro.roadnet.ch.CHEngine`; every engine returns optimal
    costs, so gap decisions are identical up to equal-cost path ties.

    ``batch_routing`` resolves all the trip's gap queries through one
    :class:`~repro.roadnet.routing.RouteBatch` call when the engine
    supports many-to-many queries; flat engines keep the per-gap loop
    (batching a superset of pairs through them would route *more*, not
    less).  Fault-injection parity is preserved: the decision loop calls
    :func:`~repro.faults.maybe_inject` for exactly the pairs the
    sequential loop would query, in the same order, before consulting
    the pre-resolved batch.
    """
    registry = get_registry()
    registry.counter("matching.gapfill_calls").inc()
    runs = _compress(route)
    if not runs:
        route.edge_sequence = []
        return route
    if len(runs) == 1:
        edge = graph.edge(runs[0].edge_id)
        forward = runs[0].last_arc >= runs[0].first_arc
        from_node = edge.u if forward else edge.v
        if not edge.allows(from_node):
            from_node = edge.other(from_node)
        route.edge_sequence = [(edge.edge_id, from_node)]
        return route

    resolved = None
    if batch_routing:
        batch = RouteBatch(
            graph, weight="length", cache=route_cache, engine=engine
        )
        if batch.supports_many:
            gap_pairs = _collect_gap_pairs(graph, runs)
            if len(gap_pairs) >= 2:
                resolved = batch.resolve(gap_pairs)
                # routing.* namespace: engine-dependent counters are
                # excluded from serial/parallel comparable metrics.
                registry.counter("routing.gapfill_batched").inc()

    if resolved is not None:
        batch_answers = resolved

        def query(exit1: int, entry2: int):
            # Same injection site, key, and order as the sequential
            # loop's cached_shortest_path would hit.
            maybe_inject("routing", (exit1, entry2), require_guard=True)
            return batch_answers[(exit1, entry2)]
    else:

        def query(exit1: int, entry2: int):
            return cached_shortest_path(  # batch-ok: fallback for flat engines
                graph, exit1, entry2, weight="length",
                cache=route_cache, engine=engine,
            )

    sequence: list[tuple[int, int]] = []
    gaps = 0
    entry_node: int | None = None
    for k in range(len(runs) - 1):
        e1 = graph.edge(runs[k].edge_id)
        e2 = graph.edge(runs[k + 1].edge_id)
        best: tuple[float, int, int, tuple[int, ...], tuple[int, ...]] | None = None
        for exit1 in _legal_exits(e1, entry_node):
            d1 = _arc_to_endpoint(e1, runs[k].last_arc, exit1)
            for entry2 in _legal_entries(e2):
                d2 = runs[k + 1].first_arc if entry2 == e2.u else (
                    e2.length - runs[k + 1].first_arc
                )
                if exit1 == entry2:
                    cost = d1 + d2
                    candidate = (cost, exit1, entry2, (), ())
                else:
                    path = query(exit1, entry2)
                    if not path.found or path.cost > max_cost_m:
                        continue
                    candidate = (d1 + path.cost + d2, exit1, entry2, path.nodes, path.edges)
                if best is None or candidate[0] < best[0]:
                    best = candidate
        if best is None:
            # Unroutable gap: keep the traversal of e1 with any legal
            # direction and restart the chain.
            from_node = entry_node if entry_node is not None else _legal_entries(e1)[0]
            sequence.append((e1.edge_id, from_node))
            entry_node = None
            gaps += 1
            registry.counter("matching.unroutable_gaps").inc()
            continue
        __, exit1, entry2, path_nodes, path_edges = best
        sequence.append((e1.edge_id, e1.other(exit1)))
        if path_edges:
            gaps += 1
            for node, edge_id in zip(path_nodes[:-1], path_edges):
                # Skip a self-transition back onto e2 (shouldn't happen, but
                # keeps the sequence free of duplicates if Dijkstra routes
                # through e2's own endpoints).
                sequence.append((edge_id, node))
        entry_node = entry2
    last = graph.edge(runs[-1].edge_id)
    from_node = entry_node if entry_node is not None else _legal_entries(last)[0]
    sequence.append((last.edge_id, from_node))
    route.edge_sequence = _dedupe(sequence)
    route.gaps_filled = gaps
    registry.counter("matching.gaps_filled").inc(gaps)
    return route


def _dedupe(sequence: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Drop exact consecutive duplicates (same edge, same direction)."""
    out: list[tuple[int, int]] = []
    for item in sequence:
        if out and out[-1] == item:
            continue
        out.append(item)
    return out
