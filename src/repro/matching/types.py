"""Matched points and routes, plus the shared matcher geometry helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.geometry import Point
from repro.roadnet.graph import RoadEdge, RoadGraph
from repro.traces.model import RoutePoint


def edge_exits(edge: RoadEdge) -> list[int]:
    """Nodes a vehicle can leave ``edge`` from, honouring one-way rules.

    Forward traversal exits at ``v``, backward at ``u``; a degenerate
    edge that allows neither direction falls back to ``v`` so callers
    always have at least one endpoint to route from.
    """
    exits = []
    if edge.forward_allowed:
        exits.append(edge.v)
    if edge.backward_allowed:
        exits.append(edge.u)
    return exits or [edge.v]


def edge_entries(edge: RoadEdge) -> list[int]:
    """Nodes a vehicle can enter ``edge`` at (mirror of :func:`edge_exits`)."""
    entries = []
    if edge.forward_allowed:
        entries.append(edge.u)
    if edge.backward_allowed:
        entries.append(edge.v)
    return entries or [edge.u]


def movement_directions(
    xys: list[tuple[float, float]],
) -> list[tuple[float, float] | None]:
    """Central-difference heading per fix (``None`` when stationary).

    Both matchers weight candidate edges by how well the edge bearing
    agrees with the local direction of travel; this is the one shared
    definition of that direction.
    """
    n = len(xys)
    out: list[tuple[float, float] | None] = []
    for i in range(n):
        a = xys[max(0, i - 1)]
        b = xys[min(n - 1, i + 1)]
        mv = (b[0] - a[0], b[1] - a[1])
        out.append(mv if mv != (0.0, 0.0) else None)
    return out


@dataclass(frozen=True)
class MatchedPoint:
    """One route point snapped onto an edge.

    ``arc_m`` is measured in the edge's canonical (u -> v) frame, so map
    attributes can be fetched without knowing the traversal direction.
    """

    point: RoutePoint
    edge_id: int
    arc_m: float
    snapped_xy: Point
    match_distance_m: float
    score: float = 0.0


@dataclass
class MatchedRoute:
    """A fully matched trip segment.

    ``matched`` are the per-point matches; ``edge_sequence`` is the
    gap-filled ordered list of ``(edge_id, from_node)`` traversals covering
    the whole drive (the paper's map-matched route on which attribute data
    is fetched).
    """

    segment_id: int
    car_id: int
    matched: list[MatchedPoint] = field(default_factory=list)
    edge_sequence: list[tuple[int, int]] = field(default_factory=list)
    gaps_filled: int = 0

    @property
    def edge_ids(self) -> list[int]:
        return [edge_id for edge_id, __ in self.edge_sequence]

    def length_m(self, graph: RoadGraph) -> float:
        """Driven length: full interior edges plus partial first/last edges."""
        if not self.edge_sequence:
            return 0.0
        total = sum(graph.edge(eid).length for eid in self.edge_ids)
        # Trim the unused parts of the first and last edges.
        if self.matched:
            first = self.matched[0]
            last = self.matched[-1]
            first_edge = graph.edge(self.edge_sequence[0][0])
            last_edge = graph.edge(self.edge_sequence[-1][0])
            if first.edge_id == first_edge.edge_id:
                from_node = self.edge_sequence[0][1]
                used = (
                    first_edge.length - first.arc_m
                    if from_node == first_edge.u
                    else first.arc_m
                )
                total -= first_edge.length - used
            if last.edge_id == last_edge.edge_id:
                from_node = self.edge_sequence[-1][1]
                used = last.arc_m if from_node == last_edge.u else last_edge.length - last.arc_m
                total -= last_edge.length - used
        return max(0.0, total)

    def element_ids(self, graph: RoadGraph) -> list[int]:
        """Digiroad element ids along the matched route, in driving order."""
        out: list[int] = []
        for edge_id, from_node in self.edge_sequence:
            edge = graph.edge(edge_id)
            spans = edge.spans if from_node == edge.u else tuple(reversed(edge.spans))
            out.extend(span.element_id for span in spans)
        return out

    def interior_nodes(self) -> list[int]:
        """Nodes passed between consecutive traversed edges."""
        nodes = []
        for (eid, from_node) in self.edge_sequence[1:]:
            nodes.append(from_node)
        return nodes

    @property
    def start_time_s(self) -> float:
        return self.matched[0].point.time_s if self.matched else 0.0

    @property
    def end_time_s(self) -> float:
        return self.matched[-1].point.time_s if self.matched else 0.0

    @property
    def mean_match_distance_m(self) -> float:
        if not self.matched:
            return 0.0
        return sum(m.match_distance_m for m in self.matched) / len(self.matched)
