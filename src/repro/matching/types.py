"""Matched points and routes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.geometry import Point
from repro.roadnet.graph import RoadGraph
from repro.traces.model import RoutePoint


@dataclass(frozen=True)
class MatchedPoint:
    """One route point snapped onto an edge.

    ``arc_m`` is measured in the edge's canonical (u -> v) frame, so map
    attributes can be fetched without knowing the traversal direction.
    """

    point: RoutePoint
    edge_id: int
    arc_m: float
    snapped_xy: Point
    match_distance_m: float
    score: float = 0.0


@dataclass
class MatchedRoute:
    """A fully matched trip segment.

    ``matched`` are the per-point matches; ``edge_sequence`` is the
    gap-filled ordered list of ``(edge_id, from_node)`` traversals covering
    the whole drive (the paper's map-matched route on which attribute data
    is fetched).
    """

    segment_id: int
    car_id: int
    matched: list[MatchedPoint] = field(default_factory=list)
    edge_sequence: list[tuple[int, int]] = field(default_factory=list)
    gaps_filled: int = 0

    @property
    def edge_ids(self) -> list[int]:
        return [edge_id for edge_id, __ in self.edge_sequence]

    def length_m(self, graph: RoadGraph) -> float:
        """Driven length: full interior edges plus partial first/last edges."""
        if not self.edge_sequence:
            return 0.0
        total = sum(graph.edge(eid).length for eid in self.edge_ids)
        # Trim the unused parts of the first and last edges.
        if self.matched:
            first = self.matched[0]
            last = self.matched[-1]
            first_edge = graph.edge(self.edge_sequence[0][0])
            last_edge = graph.edge(self.edge_sequence[-1][0])
            if first.edge_id == first_edge.edge_id:
                from_node = self.edge_sequence[0][1]
                used = (
                    first_edge.length - first.arc_m
                    if from_node == first_edge.u
                    else first.arc_m
                )
                total -= first_edge.length - used
            if last.edge_id == last_edge.edge_id:
                from_node = self.edge_sequence[-1][1]
                used = last.arc_m if from_node == last_edge.u else last_edge.length - last.arc_m
                total -= last_edge.length - used
        return max(0.0, total)

    def element_ids(self, graph: RoadGraph) -> list[int]:
        """Digiroad element ids along the matched route, in driving order."""
        out: list[int] = []
        for edge_id, from_node in self.edge_sequence:
            edge = graph.edge(edge_id)
            spans = edge.spans if from_node == edge.u else tuple(reversed(edge.spans))
            out.extend(span.element_id for span in spans)
        return out

    def interior_nodes(self) -> list[int]:
        """Nodes passed between consecutive traversed edges."""
        nodes = []
        for (eid, from_node) in self.edge_sequence[1:]:
            nodes.append(from_node)
        return nodes

    @property
    def start_time_s(self) -> float:
        return self.matched[0].point.time_s if self.matched else 0.0

    @property
    def end_time_s(self) -> float:
        return self.matched[-1].point.time_s if self.matched else 0.0

    @property
    def mean_match_distance_m(self) -> float:
        if not self.matched:
            return 0.0
        return sum(m.match_distance_m for m in self.matched) / len(self.matched)
