"""HMM (Viterbi) map matching — the modern baseline.

States are candidate edges per fix; emission likelihood is Gaussian in
match distance; transition likelihood decays exponentially in the
difference between network distance and straight-line distance (Newson &
Krummen style).  Included as the baseline the incremental matcher is
benchmarked against (the paper's related work names exactly this family).

Two decoding paths produce bitwise-identical routes:

* the **vectorized** default — per-layer emissions and ``(K_prev,
  K_cur)`` transition matrices are NumPy arrays, the forward pass is a
  broadcast add plus per-layer ``argmax``, and every network distance
  the trip needs is resolved up front through one
  :meth:`~repro.roadnet.routing.RouteBatch.resolve_costs` call over the
  union of exit/entry endpoints (cache-first, many-to-many CH kernel or
  one multi-target Dijkstra per unique source);
* the **scalar reference** (``vectorized_viterbi=False``) — a
  pure-Python forward pass with one capped Dijkstra per exit endpoint
  of every previous-layer candidate, per transition.

Equivalence hinges on one masking rule: a transition's network distance
only counts when the through-distance is within the transition cap
(``max(300, straight * max_network_factor)``).  A capped Dijkstra
settles exactly one node beyond its budget and leaks tentative frontier
labels, all provably ``> cap``, so masking ``through > cap`` makes the
reachable set exactly ``{node: d* <= cap}`` — computable from any
engine's exact distances.  Float associativity is preserved term by
term (``(d1 + through) + d2``, first-occurrence argmax ties), so the
two paths agree bit for bit; ``tests/test_hmm_vectorized.py`` holds
them to that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.matching.candidates import (
    Candidate,
    CandidateConfig,
    candidates_for_point,
    candidates_for_points,
)
from repro.matching.gapfill import connect_matches
from repro.matching.types import (
    MatchedPoint,
    MatchedRoute,
    edge_entries,
    edge_exits,
    movement_directions,
)
from repro.obs import get_journal, get_registry
from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import RouteBatch, dijkstra
from repro.traces.model import RoutePoint

#: Log-score standing in for an unreachable transition.
_UNREACHABLE = -1e9


@dataclass(frozen=True)
class HmmConfig:
    """Viterbi matcher parameters."""

    candidates: CandidateConfig = CandidateConfig()
    sigma_m: float = 15.0          # GPS noise scale (emission)
    beta_m: float = 80.0           # route-detour tolerance (transition)
    max_network_factor: float = 4.0  # cap on network/straight distance ratio

    def __post_init__(self) -> None:
        if self.sigma_m <= 0 or self.beta_m <= 0:
            raise ValueError("sigma_m and beta_m must be positive")
        if self.max_network_factor <= 0:
            raise ValueError("max_network_factor must be positive")


class HmmMatcher:
    """Viterbi decoding over candidate edges."""

    def __init__(
        self,
        graph: RoadGraph,
        config: HmmConfig | None = None,
        route_cache=None,
        routing_engine=None,
        vectorized: bool = True,
        batch_routing: bool = True,
        vectorized_viterbi: bool = True,
    ) -> None:
        self.graph = graph
        self.config = config or HmmConfig()
        self.route_cache = route_cache
        #: Gap-fill engine: None (flat Dijkstra), an engine name, or a
        #: prepared CH engine (see :func:`repro.roadnet.make_routing_engine`).
        self.routing_engine = routing_engine
        #: Generate candidates for all fixes in one batched pass
        #: (identical candidates; see
        #: :func:`repro.matching.candidates.candidates_for_points`).
        self.vectorized = vectorized
        #: Resolve each trip's gap queries in one many-to-many batch when
        #: the engine supports it (identical edge sequences; see
        #: :func:`repro.matching.gapfill.connect_matches`).
        self.batch_routing = batch_routing
        #: Decode with the NumPy forward pass and the batched
        #: transition-distance kernel (identical routes; module docstring).
        self.vectorized_viterbi = vectorized_viterbi

    def match(
        self,
        points: list[RoutePoint],
        to_xy,
        segment_id: int = 0,
        car_id: int = 0,
    ) -> MatchedRoute | None:
        """Viterbi-match a point sequence (same interface as incremental)."""
        xys = [to_xy(p) for p in points]
        movements = movement_directions(xys)
        if self.vectorized:
            all_candidates = candidates_for_points(
                self.graph, xys, movements, self.config.candidates
            )
        else:
            all_candidates = [
                candidates_for_point(self.graph, xy, mv, self.config.candidates)
                for xy, mv in zip(xys, movements)
            ]
        layers: list[list[Candidate]] = []
        kept_points: list[RoutePoint] = []
        kept_xys: list[tuple[float, float]] = []
        for p, xy, cands in zip(points, xys, all_candidates):
            if cands:
                layers.append(cands)
                kept_points.append(p)
                kept_xys.append(xy)
        if not layers:
            return None

        n = len(layers)
        straights = [
            math.hypot(
                kept_xys[i][0] - kept_xys[i - 1][0],
                kept_xys[i][1] - kept_xys[i - 1][1],
            )
            for i in range(1, n)
        ]
        caps = [max(300.0, s * self.config.max_network_factor) for s in straights]
        exits_per = [[edge_exits(c.edge) for c in layer] for layer in layers]
        entries_per = [[edge_entries(c.edge) for c in layer] for layer in layers]
        pairs, source_caps, per_exit_searches = _collect_transition_pairs(
            layers, caps, exits_per, entries_per
        )
        # Batching effectiveness, deterministic per trip (independent of
        # cache state and scheduling): the scalar reference runs one
        # capped Dijkstra per exit endpoint of every previous-layer
        # candidate per transition; the batched kernel needs at most one
        # search per unique exit node of the whole trip.
        avoided = per_exit_searches - len(source_caps)
        registry = get_registry()
        registry.counter("matching.hmm_layers").inc(n)
        registry.counter("matching.hmm_transition_pairs").inc(len(pairs))
        registry.counter("matching.hmm_dijkstra_avoided").inc(avoided)

        if self.vectorized_viterbi:
            chosen, scores = self._viterbi_vectorized(
                layers, straights, caps, pairs, source_caps, exits_per, entries_per
            )
        else:
            chosen, scores = self._viterbi_scalar(layers, straights, caps)

        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "matcher",
                matcher="hmm",
                segment_id=segment_id,
                car_id=car_id,
                layers=n,
                transition_pairs=len(pairs),
                dijkstra_avoided=avoided,
                vectorized_viterbi=self.vectorized_viterbi,
            )

        matched = [
            MatchedPoint(
                point=kept_points[i],
                edge_id=layers[i][chosen[i]].edge.edge_id,
                arc_m=layers[i][chosen[i]].arc_m,
                snapped_xy=layers[i][chosen[i]].snapped_xy,
                match_distance_m=layers[i][chosen[i]].distance_m,
                score=scores[i],
            )
            for i in range(n)
        ]
        route = MatchedRoute(segment_id=segment_id, car_id=car_id, matched=matched)
        connect_matches(
            self.graph, route,
            route_cache=self.route_cache, engine=self.routing_engine,
            batch_routing=self.batch_routing,
        )
        return route

    # -- scalar reference ------------------------------------------------------

    def _viterbi_scalar(
        self,
        layers: list[list[Candidate]],
        straights: list[float],
        caps: list[float],
    ) -> tuple[list[int], list[float]]:
        """Pure-Python forward pass (the pre-vectorization reference)."""
        n = len(layers)
        log_prob: list[list[float]] = [[self._emission(c) for c in layers[0]]]
        back: list[list[int]] = [[-1] * len(layers[0])]
        for i in range(1, n):
            prev_layer = layers[i - 1]
            cur_layer = layers[i]
            trans = self._transition_matrix(
                prev_layer, cur_layer, straights[i - 1], caps[i - 1]
            )
            row_scores: list[float] = []
            row_back: list[int] = []
            for j, cand in enumerate(cur_layer):
                emit = self._emission(cand)
                best_k = -1
                best_val = -math.inf
                for k in range(len(prev_layer)):
                    val = log_prob[i - 1][k] + trans[k][j]
                    if val > best_val:
                        best_val = val
                        best_k = k
                row_scores.append(best_val + emit)
                row_back.append(best_k)
            log_prob.append(row_scores)
            back.append(row_back)
        return _backtrack(layers, log_prob, back)

    # -- vectorized path -------------------------------------------------------

    def _viterbi_vectorized(
        self,
        layers: list[list[Candidate]],
        straights: list[float],
        caps: list[float],
        pairs: list[tuple[int, int]],
        source_caps: dict[int, float],
        exits_per: list[list[list[int]]],
        entries_per: list[list[list[int]]],
    ) -> tuple[list[int], list[float]]:
        """NumPy forward pass over batched network distances."""
        costs = RouteBatch(
            self.graph, "length", cache=self.route_cache, engine=self.routing_engine
        ).resolve_costs(pairs, source_caps)
        # Dense cost table over the trip's unique exit/entry endpoints.
        src_index: dict[int, int] = {}
        tgt_index: dict[int, int] = {}
        for s, t in pairs:
            src_index.setdefault(s, len(src_index))
            tgt_index.setdefault(t, len(tgt_index))
        table = np.full(
            (max(1, len(src_index)), max(1, len(tgt_index))), math.inf
        )
        for (s, t), cost in costs.items():
            table[src_index[s], tgt_index[t]] = cost

        n = len(layers)
        sizes = [len(layer) for layer in layers]
        kmax = max(sizes)
        wide = 2 * kmax
        # Padded per-layer state (padding never escapes: the forward scan
        # slices every array back to the layer's true candidate count).
        dists = np.zeros((n, kmax))
        arcs = np.zeros((n, kmax))
        eids = np.full((n, kmax), -1, dtype=np.int64)
        # Exit/entry endpoint variants per candidate, variant-major along
        # the second axis (1-2 legal endpoints per edge; `ok` masks the
        # rest).  Row i of the exit arrays serves transition i -> i+1.
        src_idx = np.zeros((n - 1, wide), dtype=np.intp)
        tgt_idx = np.zeros_like(src_idx)
        d1 = np.zeros((n - 1, wide))
        d2 = np.zeros_like(d1)
        src_ok = np.zeros((n - 1, wide), dtype=bool)
        tgt_ok = np.zeros_like(src_ok)
        for i, layer in enumerate(layers):
            for k, cand in enumerate(layer):
                edge = cand.edge
                dists[i, k] = cand.distance_m
                arcs[i, k] = cand.arc_m
                eids[i, k] = edge.edge_id
                if i < n - 1:
                    for a, node in enumerate(exits_per[i][k]):
                        row = src_index.get(node)
                        if row is not None:
                            src_idx[i, a * kmax + k] = row
                            d1[i, a * kmax + k] = (
                                edge.length - cand.arc_m
                                if node == edge.v
                                else cand.arc_m
                            )
                            src_ok[i, a * kmax + k] = True
                if i > 0:
                    for b, node in enumerate(entries_per[i][k]):
                        col = tgt_index.get(node)
                        if col is not None:
                            tgt_idx[i - 1, b * kmax + k] = col
                            d2[i - 1, b * kmax + k] = (
                                cand.arc_m
                                if node == edge.u
                                else edge.length - cand.arc_m
                            )
                            tgt_ok[i - 1, b * kmax + k] = True

        z = dists / self.config.sigma_m
        emissions = -0.5 * z * z

        # Every transition matrix of the trip in one shot: one (T-1,
        # 2K, 2K) gather over all exit/entry variant combinations, then
        # a block-min over the two variant axes.  The scalar reference
        # keeps a strict-< running min over the same combos, so the
        # block-min yields the identical float (ties share the value).
        capv = np.asarray(caps).reshape(-1, 1, 1)
        through = table[src_idx[:, :, None], tgt_idx[:, None, :]]
        total = (d1[:, :, None] + through) + d2[:, None, :]
        valid = (
            (src_ok[:, :, None] & tgt_ok[:, None, :])
            & (through <= capv)
            & (total <= capv * 1.5)
        )
        nd = (
            np.where(valid, total, math.inf)
            .reshape(-1, 2, kmax, 2, kmax)
            .min(axis=(1, 3))
        )
        same = eids[:-1, :, None] == eids[1:, None, :]
        nd = np.where(same, np.abs(arcs[1:, None, :] - arcs[:-1, :, None]), nd)
        straightv = np.asarray(straights).reshape(-1, 1, 1)
        trans_all = np.where(
            nd < math.inf, -np.abs(nd - straightv) / self.config.beta_m, _UNREACHABLE
        )

        # Sequential forward scan (each layer depends on the last): one
        # broadcast add, argmax, and max per layer over the pre-built
        # matrices (max picks the exact float argmax points at).
        log_prob: list[np.ndarray] = [emissions[0, : sizes[0]]]
        back: list[np.ndarray] = [np.full(sizes[0], -1, dtype=np.intp)]
        for i in range(1, n):
            scores = (
                log_prob[i - 1][:, None]
                + trans_all[i - 1, : sizes[i - 1], : sizes[i]]
            )
            back.append(np.argmax(scores, axis=0))
            log_prob.append(scores.max(axis=0) + emissions[i, : sizes[i]])
        return _backtrack(layers, log_prob, back)

    # -- probabilities ---------------------------------------------------------

    def _emission(self, cand: Candidate) -> float:
        z = cand.distance_m / self.config.sigma_m
        return -0.5 * z * z

    def _transition_matrix(
        self,
        prev_layer: list[Candidate],
        cur_layer: list[Candidate],
        straight: float,
        cap: float,
    ) -> list[list[float]]:
        """Log transition scores between two candidate layers (scalar).

        Network distances are computed with one capped Dijkstra per exit
        endpoint of each previous candidate, shared across all follow-up
        candidates.
        """
        out: list[list[float]] = []
        for prev in prev_layer:
            dist_maps: dict[int, dict[int, float]] = {}
            for exit_node in edge_exits(prev.edge):
                settled = dijkstra(  # batch-ok: scalar reference path (vectorized_viterbi=False)
                    self.graph, exit_node, target=None, weight="length", max_cost=cap
                )
                dist_maps[exit_node] = {n: c for n, (c, __, ___) in settled.items()}
            row: list[float] = []
            for cur in cur_layer:
                nd = self._network_distance(prev, cur, dist_maps, cap)
                if nd is None:
                    row.append(_UNREACHABLE)
                else:
                    row.append(-abs(nd - straight) / self.config.beta_m)
            out.append(row)
        return out

    def _network_distance(
        self,
        prev: Candidate,
        cur: Candidate,
        dist_maps: dict[int, dict[int, float]],
        cap: float,
    ) -> float | None:
        if prev.edge.edge_id == cur.edge.edge_id:
            return abs(cur.arc_m - prev.arc_m)
        best: float | None = None
        for exit_node, dist_map in dist_maps.items():
            d1 = (
                prev.edge.length - prev.arc_m
                if exit_node == prev.edge.v
                else prev.arc_m
            )
            for entry in edge_entries(cur.edge):
                through = dist_map.get(entry)
                # A capped Dijkstra settles one node beyond the budget
                # and returns tentative frontier labels; masking
                # ``through > cap`` pins the reachable set to
                # ``{node: d* <= cap}``, which any exact engine can
                # reproduce (see module docstring).
                if through is None or through > cap:
                    continue
                d2 = cur.arc_m if entry == cur.edge.u else cur.edge.length - cur.arc_m
                total = d1 + through + d2
                if total <= cap * 1.5 and (best is None or total < best):
                    best = total
        return best


def _collect_transition_pairs(
    layers: list[list[Candidate]],
    caps: list[float],
    exits_per: list[list[list[int]]],
    entries_per: list[list[list[int]]],
) -> tuple[list[tuple[int, int]], dict[int, float], int]:
    """The trip's transition-distance query set, in scalar consult order.

    ``exits_per``/``entries_per`` are the per-layer, per-candidate
    :func:`edge_exits`/:func:`edge_entries` lists (computed once in
    :meth:`HmmMatcher.match` and shared with the vectorized builder).

    Returns ``(pairs, source_caps, per_exit_searches)``: the unique
    ``(exit_node, entry_node)`` pairs every transition consults
    (first-occurrence order, same-edge candidate pairs excluded exactly
    like the scalar short-circuit), the largest transition cap each exit
    node serves (the flat kernel's per-source search bound), and the
    number of capped Dijkstras the scalar reference would run.
    """
    pairs: dict[tuple[int, int], None] = {}
    source_caps: dict[int, float] = {}
    per_exit_searches = 0
    for i in range(1, len(layers)):
        cap = caps[i - 1]
        cur_entries = entries_per[i]
        cur_ids = [c.edge.edge_id for c in layers[i]]
        for prev, exits in zip(layers[i - 1], exits_per[i - 1]):
            per_exit_searches += len(exits)
            prev_id = prev.edge.edge_id
            for cur_id, entries in zip(cur_ids, cur_entries):
                if cur_id == prev_id:
                    continue
                for e in exits:
                    prior = source_caps.get(e)
                    if prior is None or cap > prior:
                        source_caps[e] = cap
                    for en in entries:
                        pairs.setdefault((e, en))
    return list(pairs), source_caps, per_exit_searches


def _backtrack(layers, log_prob, back) -> tuple[list[int], list[float]]:
    """Most-likely state per layer; ties resolve to the first maximum in
    both decoders (strict-> replacement scalar, first-occurrence argmax
    vectorized)."""
    n = len(layers)
    j = max(range(len(layers[-1])), key=lambda idx: log_prob[-1][idx])
    chosen: list[int] = [0] * n
    for i in range(n - 1, -1, -1):
        chosen[i] = j
        j = back[i][j] if back[i][j] >= 0 else 0
    scores = [float(log_prob[i][chosen[i]]) for i in range(n)]
    return chosen, scores
