"""HMM (Viterbi) map matching — the modern baseline.

States are candidate edges per fix; emission likelihood is Gaussian in
match distance; transition likelihood decays exponentially in the
difference between network distance and straight-line distance (Newson &
Krummen style).  Included as the baseline the incremental matcher is
benchmarked against (the paper's related work names exactly this family).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.matching.candidates import (
    Candidate,
    CandidateConfig,
    candidates_for_point,
    candidates_for_points,
)
from repro.matching.gapfill import connect_matches
from repro.matching.types import MatchedPoint, MatchedRoute
from repro.roadnet.graph import RoadEdge, RoadGraph
from repro.roadnet.routing import dijkstra
from repro.traces.model import RoutePoint


@dataclass(frozen=True)
class HmmConfig:
    """Viterbi matcher parameters."""

    candidates: CandidateConfig = CandidateConfig()
    sigma_m: float = 15.0          # GPS noise scale (emission)
    beta_m: float = 80.0           # route-detour tolerance (transition)
    max_network_factor: float = 4.0  # cap on network/straight distance ratio

    def __post_init__(self) -> None:
        if self.sigma_m <= 0 or self.beta_m <= 0:
            raise ValueError("sigma_m and beta_m must be positive")


class HmmMatcher:
    """Viterbi decoding over candidate edges."""

    def __init__(
        self,
        graph: RoadGraph,
        config: HmmConfig | None = None,
        route_cache=None,
        routing_engine=None,
        vectorized: bool = True,
        batch_routing: bool = True,
    ) -> None:
        self.graph = graph
        self.config = config or HmmConfig()
        self.route_cache = route_cache
        #: Gap-fill engine: None (flat Dijkstra), an engine name, or a
        #: prepared CH engine (see :func:`repro.roadnet.make_routing_engine`).
        self.routing_engine = routing_engine
        #: Generate candidates for all fixes in one batched pass
        #: (identical candidates; see
        #: :func:`repro.matching.candidates.candidates_for_points`).
        self.vectorized = vectorized
        #: Resolve each trip's gap queries in one many-to-many batch when
        #: the engine supports it (identical edge sequences; see
        #: :func:`repro.matching.gapfill.connect_matches`).
        self.batch_routing = batch_routing

    def match(
        self,
        points: list[RoutePoint],
        to_xy,
        segment_id: int = 0,
        car_id: int = 0,
    ) -> MatchedRoute | None:
        """Viterbi-match a point sequence (same interface as incremental)."""
        xys = [to_xy(p) for p in points]
        movements = _movements(xys)
        if self.vectorized:
            all_candidates = candidates_for_points(
                self.graph, xys, movements, self.config.candidates
            )
        else:
            all_candidates = [
                candidates_for_point(self.graph, xy, mv, self.config.candidates)
                for xy, mv in zip(xys, movements)
            ]
        layers: list[list[Candidate]] = []
        kept_points: list[RoutePoint] = []
        kept_xys: list[tuple[float, float]] = []
        for p, xy, cands in zip(points, xys, all_candidates):
            if cands:
                layers.append(cands)
                kept_points.append(p)
                kept_xys.append(xy)
        if not layers:
            return None

        # Viterbi forward pass.
        n = len(layers)
        log_prob: list[list[float]] = [[self._emission(c) for c in layers[0]]]
        back: list[list[int]] = [[-1] * len(layers[0])]
        for i in range(1, n):
            straight = math.hypot(
                kept_xys[i][0] - kept_xys[i - 1][0], kept_xys[i][1] - kept_xys[i - 1][1]
            )
            prev_layer = layers[i - 1]
            cur_layer = layers[i]
            trans = self._transition_matrix(prev_layer, cur_layer, straight)
            row_scores: list[float] = []
            row_back: list[int] = []
            for j, cand in enumerate(cur_layer):
                emit = self._emission(cand)
                best_k = -1
                best_val = -math.inf
                for k in range(len(prev_layer)):
                    val = log_prob[i - 1][k] + trans[k][j]
                    if val > best_val:
                        best_val = val
                        best_k = k
                row_scores.append(best_val + emit)
                row_back.append(best_k)
            log_prob.append(row_scores)
            back.append(row_back)

        # Backtrack.
        j = max(range(len(layers[-1])), key=lambda idx: log_prob[-1][idx])
        chosen: list[int] = [0] * n
        for i in range(n - 1, -1, -1):
            chosen[i] = j
            j = back[i][j] if back[i][j] >= 0 else 0

        matched = [
            MatchedPoint(
                point=kept_points[i],
                edge_id=layers[i][chosen[i]].edge.edge_id,
                arc_m=layers[i][chosen[i]].arc_m,
                snapped_xy=layers[i][chosen[i]].snapped_xy,
                match_distance_m=layers[i][chosen[i]].distance_m,
                score=log_prob[i][chosen[i]],
            )
            for i in range(n)
        ]
        route = MatchedRoute(segment_id=segment_id, car_id=car_id, matched=matched)
        connect_matches(
            self.graph, route,
            route_cache=self.route_cache, engine=self.routing_engine,
            batch_routing=self.batch_routing,
        )
        return route

    # -- probabilities ---------------------------------------------------------

    def _emission(self, cand: Candidate) -> float:
        z = cand.distance_m / self.config.sigma_m
        return -0.5 * z * z

    def _transition_matrix(
        self, prev_layer: list[Candidate], cur_layer: list[Candidate], straight: float
    ) -> list[list[float]]:
        """Log transition scores between two candidate layers.

        Network distances are computed with one capped Dijkstra per exit
        endpoint of each previous candidate, shared across all follow-up
        candidates.
        """
        cap = max(300.0, straight * self.config.max_network_factor)
        out: list[list[float]] = []
        for prev in prev_layer:
            dist_maps: dict[int, dict[int, float]] = {}
            for exit_node in _exits(prev.edge):
                settled = dijkstra(
                    self.graph, exit_node, target=None, weight="length", max_cost=cap
                )
                dist_maps[exit_node] = {n: c for n, (c, __, ___) in settled.items()}
            row: list[float] = []
            for cur in cur_layer:
                nd = self._network_distance(prev, cur, dist_maps, cap)
                if nd is None:
                    row.append(-1e9)
                else:
                    row.append(-abs(nd - straight) / self.config.beta_m)
            out.append(row)
        return out

    def _network_distance(
        self,
        prev: Candidate,
        cur: Candidate,
        dist_maps: dict[int, dict[int, float]],
        cap: float,
    ) -> float | None:
        if prev.edge.edge_id == cur.edge.edge_id:
            return abs(cur.arc_m - prev.arc_m)
        best: float | None = None
        for exit_node, dist_map in dist_maps.items():
            d1 = (
                prev.edge.length - prev.arc_m
                if exit_node == prev.edge.v
                else prev.arc_m
            )
            for entry in _entries(cur.edge):
                through = dist_map.get(entry)
                if through is None:
                    continue
                d2 = cur.arc_m if entry == cur.edge.u else cur.edge.length - cur.arc_m
                total = d1 + through + d2
                if total <= cap * 1.5 and (best is None or total < best):
                    best = total
        return best


def _exits(edge: RoadEdge) -> list[int]:
    exits = []
    if edge.forward_allowed:
        exits.append(edge.v)
    if edge.backward_allowed:
        exits.append(edge.u)
    return exits or [edge.v]


def _entries(edge: RoadEdge) -> list[int]:
    entries = []
    if edge.forward_allowed:
        entries.append(edge.u)
    if edge.backward_allowed:
        entries.append(edge.v)
    return entries or [edge.u]


def _movements(xys):
    n = len(xys)
    out = []
    for i in range(n):
        a = xys[max(0, i - 1)]
        b = xys[min(n - 1, i + 1)]
        mv = (b[0] - a[0], b[1] - a[1])
        out.append(mv if mv != (0.0, 0.0) else None)
    return out
