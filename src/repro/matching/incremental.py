"""Incremental map matching (Brakatsoulas et al., VLDB'05).

Fixes are matched one by one; each decision maximises the candidate's own
score plus the best achievable score over a short look-ahead window,
where a follow-up candidate only counts when it is *network-connected* to
the current one (same edge, or within two adjacency hops).  This is the
algorithm the paper uses, enhanced with one-way information from the map
(see :mod:`repro.matching.candidates`).

The matcher's per-trip loop state is an explicit, serialisable
:class:`MatcherState`: :meth:`IncrementalMatcher.begin` opens a state,
:meth:`~IncrementalMatcher.feed` appends fixes one at a time (deciding
every index whose look-ahead window has become final), and
:meth:`~IncrementalMatcher.finish` decides the tail and produces the
:class:`~repro.matching.types.MatchedRoute`.  Batch
:meth:`~IncrementalMatcher.match` runs the *same* decision engine over a
pre-populated candidate cache, so streaming a trip point-at-a-time —
with arbitrary serialise/deserialise round trips between fixes — yields
bit-identical matches to the one-shot call.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter

from repro.matching.candidates import (
    Candidate,
    CandidateConfig,
    candidates_for_point,
    candidates_for_points,
)
from repro.matching.gapfill import connect_matches
from repro.matching.types import MatchedPoint, MatchedRoute, movement_directions
from repro.obs import get_logger, get_registry
from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import RouteCache
from repro.traces.model import RoutePoint

_log = get_logger(__name__)

#: Serialisation schema of :class:`MatcherState`.  Bump when the payload
#: layout changes; :meth:`MatcherState.from_payload` rejects mismatches
#: loudly instead of mis-reading a checkpoint.
STATE_SCHEMA_VERSION = 1

#: Field order of one serialised route point (matches the CSV schema).
_POINT_FIELDS = ("point_id", "trip_id", "lat", "lon", "time_s", "speed_kmh", "fuel_ml")


@dataclass(frozen=True)
class IncrementalConfig:
    """Incremental matcher parameters."""

    candidates: CandidateConfig = CandidateConfig()
    look_ahead: int = 2
    continuity_bonus: float = 3.0   # prefer staying on the same edge
    max_gap_cost_m: float = 2_000.0  # Dijkstra budget when filling gaps

    def __post_init__(self) -> None:
        if self.look_ahead < 0:
            raise ValueError("look_ahead must be non-negative")


@dataclass
class MatcherState:
    """The matcher's per-trip loop state, extracted and serialisable.

    Everything the greedy look-ahead loop used to keep in locals lives
    here: the fixes seen so far (with their projected coordinates), the
    decisions already made, the previous matched edge, and the decision
    frontier.  ``cache`` holds per-index candidate lists — a pure
    function of the fixes and the graph — and is deliberately *not*
    serialised: :meth:`from_payload` leaves it empty and the matcher
    recomputes entries lazily, which is what makes
    ``to_bytes``/``from_bytes`` total (no engine handles, no NumPy
    arrays, no graph references in the payload).
    """

    segment_id: int = 0
    car_id: int = 0
    points: list[RoutePoint] = field(default_factory=list)
    xys: list[tuple[float, float]] = field(default_factory=list)
    #: Final decisions so far, in point order.
    decided: list[MatchedPoint] = field(default_factory=list)
    #: Point index of each entry in :attr:`decided` (fixes with no
    #: candidate are skipped, so the mapping is explicit).
    decided_indices: list[int] = field(default_factory=list)
    prev_edge_id: int | None = None
    #: Next point index to decide (everything below is final).
    decided_upto: int = 0
    #: Wall time accumulated across feed/finish calls.
    elapsed_s: float = 0.0
    #: Lazily computed candidate lists per point index.  Ephemeral —
    #: never serialised, rebuilt on demand after a round trip.
    cache: dict[int, list[Candidate]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.points)

    # -- serialisation ------------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-safe dict of the state (floats round-trip exactly)."""
        return {
            "schema": STATE_SCHEMA_VERSION,
            "segment_id": self.segment_id,
            "car_id": self.car_id,
            "points": [
                [getattr(p, name) for name in _POINT_FIELDS] for p in self.points
            ],
            "xys": [[x, y] for x, y in self.xys],
            "decided": [
                {
                    "index": index,
                    "edge_id": m.edge_id,
                    "arc_m": m.arc_m,
                    "snapped_xy": [m.snapped_xy[0], m.snapped_xy[1]],
                    "match_distance_m": m.match_distance_m,
                    "score": m.score,
                }
                for index, m in zip(self.decided_indices, self.decided)
            ],
            "prev_edge_id": self.prev_edge_id,
            "decided_upto": self.decided_upto,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MatcherState":
        schema = payload.get("schema")
        if schema != STATE_SCHEMA_VERSION:
            raise ValueError(
                f"matcher state schema {schema!r} != {STATE_SCHEMA_VERSION} "
                "(incompatible checkpoint)"
            )
        points = [
            RoutePoint(**dict(zip(_POINT_FIELDS, row)))
            for row in payload["points"]
        ]
        state = cls(
            segment_id=payload["segment_id"],
            car_id=payload["car_id"],
            points=points,
            xys=[(x, y) for x, y in payload["xys"]],
            prev_edge_id=payload["prev_edge_id"],
            decided_upto=payload["decided_upto"],
            elapsed_s=payload.get("elapsed_s", 0.0),
        )
        for entry in payload["decided"]:
            index = entry["index"]
            state.decided_indices.append(index)
            state.decided.append(
                MatchedPoint(
                    point=points[index],
                    edge_id=entry["edge_id"],
                    arc_m=entry["arc_m"],
                    snapped_xy=(entry["snapped_xy"][0], entry["snapped_xy"][1]),
                    match_distance_m=entry["match_distance_m"],
                    score=entry["score"],
                )
            )
        return state

    def to_bytes(self) -> bytes:
        return json.dumps(
            self.to_payload(), separators=(",", ":"), sort_keys=True
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "MatcherState":
        return cls.from_payload(json.loads(data.decode()))


class IncrementalMatcher:
    """Greedy look-ahead matcher over a road graph."""

    def __init__(
        self,
        graph: RoadGraph,
        config: IncrementalConfig | None = None,
        route_cache: RouteCache | None = None,
        routing_engine=None,
        vectorized: bool = True,
        batch_routing: bool = True,
    ) -> None:
        self.graph = graph
        self.config = config or IncrementalConfig()
        self.route_cache = route_cache
        #: Gap-fill engine: None (flat Dijkstra), an engine name, or a
        #: prepared CH engine (see :func:`repro.roadnet.make_routing_engine`).
        self.routing_engine = routing_engine
        #: Generate candidates for all fixes in one batched pass
        #: (identical candidates; see
        #: :func:`repro.matching.candidates.candidates_for_points`).
        self.vectorized = vectorized
        #: Resolve each trip's gap queries in one many-to-many batch when
        #: the engine supports it (identical edge sequences; see
        #: :func:`repro.matching.gapfill.connect_matches`).
        self.batch_routing = batch_routing
        self._adjacent: dict[int, set[int]] = {}

    # -- adjacency ------------------------------------------------------------

    def _edges_adjacent(self, edge_id: int) -> set[int]:
        """Edge ids sharing a node with ``edge_id`` (cached)."""
        cached = self._adjacent.get(edge_id)
        if cached is not None:
            return cached
        edge = self.graph.edge(edge_id)
        near = {
            e.edge_id
            for node in (edge.u, edge.v)
            for e in self.graph.out_edges(node, respect_oneway=False)
        }
        near.add(edge_id)
        self._adjacent[edge_id] = near
        return near

    def _connected(self, a: int, b: int) -> bool:
        """Within two adjacency hops (enough for event-sampled city fixes)."""
        if b in self._edges_adjacent(a):
            return True
        return any(b in self._edges_adjacent(mid) for mid in self._edges_adjacent(a))

    # -- incremental state API ---------------------------------------------

    def begin(self, segment_id: int = 0, car_id: int = 0) -> MatcherState:
        """Open a fresh per-trip matcher state."""
        return MatcherState(segment_id=segment_id, car_id=car_id)

    def feed(self, state: MatcherState, point: RoutePoint, to_xy) -> int:
        """Append one fix and decide every index that has become final.

        A fix's movement direction (central difference) is only final
        once its successor exists, and a decision at index ``i`` reads
        candidates up to ``i + look_ahead`` — so with ``n`` fixes seen,
        every index up to ``n - 2 - look_ahead`` is decidable exactly as
        the batch loop would decide it.  Returns the number of new
        decisions made by this call.
        """
        t0 = perf_counter()
        state.points.append(point)
        state.xys.append(to_xy(point))
        frontier = len(state.points) - 2 - self.config.look_ahead
        made = 0
        while state.decided_upto <= frontier:
            self._decide(state, state.decided_upto, total=None)
            state.decided_upto += 1
            made += 1
        state.elapsed_s += perf_counter() - t0
        return made

    def finish(self, state: MatcherState) -> MatchedRoute | None:
        """Decide the remaining tail and emit the matched route.

        Publishes the same counters as :meth:`match` and returns ``None``
        when no fix found any candidate (off-network data).
        """
        t0 = perf_counter()
        n = len(state.points)
        while state.decided_upto < n:
            self._decide(state, state.decided_upto, total=n)
            state.decided_upto += 1
        registry = get_registry()
        registry.counter("matching.calls").inc()
        registry.counter("matching.points_in").inc(n)
        registry.counter("matching.points_matched").inc(len(state.decided))
        registry.counter("matching.candidates_evaluated").inc(
            sum(len(state.cache.get(i, ())) for i in range(n))
        )
        state.elapsed_s += perf_counter() - t0
        if not state.decided:
            registry.counter("matching.unmatched_sequences").inc()
            registry.histogram("matching.match_seconds").observe(state.elapsed_s)
            return None
        route = MatchedRoute(
            segment_id=state.segment_id,
            car_id=state.car_id,
            matched=list(state.decided),
        )
        t1 = perf_counter()
        connect_matches(
            self.graph, route, max_cost_m=self.config.max_gap_cost_m,
            route_cache=self.route_cache, engine=self.routing_engine,
            batch_routing=self.batch_routing,
        )
        state.elapsed_s += perf_counter() - t1
        registry.histogram("matching.match_seconds").observe(state.elapsed_s)
        _log.debug(
            "matched segment",
            extra={
                "segment_id": state.segment_id,
                "points": n,
                "matched": len(state.decided),
                "edges": len(route.edge_sequence),
                "gaps_filled": route.gaps_filled,
            },
        )
        return route

    def _candidates_at(self, state: MatcherState, i: int) -> list[Candidate]:
        """Candidate list for fix ``i``, computed lazily and cached.

        Only called for indices whose movement direction is final, so the
        central difference below equals the batch
        :func:`~repro.matching.types.movement_directions` entry.
        """
        cands = state.cache.get(i)
        if cands is None:
            xys = state.xys
            n = len(xys)
            a = xys[max(0, i - 1)]
            b = xys[min(n - 1, i + 1)]
            mv = (b[0] - a[0], b[1] - a[1])
            movement = mv if mv != (0.0, 0.0) else None
            if self.vectorized:
                cands = candidates_for_points(
                    self.graph, [xys[i]], [movement], self.config.candidates
                )[0]
            else:
                cands = candidates_for_point(
                    self.graph, xys[i], movement, self.config.candidates
                )
            state.cache[i] = cands
        return cands

    def _decide(self, state: MatcherState, i: int, total: int | None) -> None:
        """Make the final decision for fix ``i`` (the batch loop body).

        ``total`` bounds the look-ahead window (the number of fixes the
        trip ends up with); ``None`` means the window is provably
        complete regardless of how many more fixes arrive.
        """
        cands = self._candidates_at(state, i)
        if not cands:
            return  # unmatched fix; gap filling bridges it later
        prev_edge_id = state.prev_edge_id
        best = max(
            cands,
            key=lambda c: self._decision_score(state, c, i, total, prev_edge_id),
        )
        state.decided.append(
            MatchedPoint(
                point=state.points[i],
                edge_id=best.edge.edge_id,
                arc_m=best.arc_m,
                snapped_xy=best.snapped_xy,
                match_distance_m=best.distance_m,
                score=best.score,
            )
        )
        state.decided_indices.append(i)
        state.prev_edge_id = best.edge.edge_id

    def _decision_score(
        self,
        state: MatcherState,
        candidate: Candidate,
        i: int,
        total: int | None,
        prev_edge_id: int | None,
    ) -> float:
        score = candidate.score
        if prev_edge_id is not None:
            if candidate.edge.edge_id == prev_edge_id:
                score += self.config.continuity_bonus
            elif not self._connected(prev_edge_id, candidate.edge.edge_id):
                score -= self.config.continuity_bonus
        # Look-ahead: the best connected follow-up chain.
        edge_id = candidate.edge.edge_id
        end = i + 1 + self.config.look_ahead
        if total is not None:
            end = min(end, total)
        for j in range(i + 1, end):
            nxt = self._candidates_at(state, j)
            if not nxt:
                break
            connected = [c for c in nxt if self._connected(edge_id, c.edge.edge_id)]
            if not connected:
                score -= self.config.continuity_bonus
                break
            best_next = max(connected, key=lambda c: c.score)
            score += 0.5 * best_next.score
            edge_id = best_next.edge.edge_id
        return score

    # -- matching ---------------------------------------------------------------

    def match(
        self,
        points: list[RoutePoint],
        to_xy,
        segment_id: int = 0,
        car_id: int = 0,
    ) -> MatchedRoute | None:
        """Match a point sequence.

        ``to_xy`` converts a route point to plane coordinates (normally
        ``projector.to_xy(p.lat, p.lon)`` partial).  Returns None when no
        point finds any candidate (off-network data).

        Runs the state machine of :meth:`begin`/:meth:`finish` over a
        candidate cache pre-populated in one batched pass — the same
        decisions a point-at-a-time :meth:`feed` stream would make.
        """
        t0 = perf_counter()
        state = self.begin(segment_id, car_id)
        state.points = list(points)
        state.xys = [to_xy(p) for p in points]
        movements = movement_directions(state.xys)
        if self.vectorized:
            all_candidates = candidates_for_points(
                self.graph, state.xys, movements, self.config.candidates
            )
        else:
            all_candidates = [
                candidates_for_point(self.graph, xy, mv, self.config.candidates)
                for xy, mv in zip(state.xys, movements)
            ]
        state.cache = dict(enumerate(all_candidates))
        state.elapsed_s = perf_counter() - t0
        return self.finish(state)
