"""Incremental map matching (Brakatsoulas et al., VLDB'05).

Fixes are matched one by one; each decision maximises the candidate's own
score plus the best achievable score over a short look-ahead window,
where a follow-up candidate only counts when it is *network-connected* to
the current one (same edge, or within two adjacency hops).  This is the
algorithm the paper uses, enhanced with one-way information from the map
(see :mod:`repro.matching.candidates`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.matching.candidates import (
    Candidate,
    CandidateConfig,
    candidates_for_point,
    candidates_for_points,
)
from repro.matching.gapfill import connect_matches
from repro.matching.types import MatchedPoint, MatchedRoute, movement_directions
from repro.obs import get_logger, get_registry
from repro.roadnet.graph import RoadGraph
from repro.roadnet.routing import RouteCache
from repro.traces.model import RoutePoint

_log = get_logger(__name__)


@dataclass(frozen=True)
class IncrementalConfig:
    """Incremental matcher parameters."""

    candidates: CandidateConfig = CandidateConfig()
    look_ahead: int = 2
    continuity_bonus: float = 3.0   # prefer staying on the same edge
    max_gap_cost_m: float = 2_000.0  # Dijkstra budget when filling gaps

    def __post_init__(self) -> None:
        if self.look_ahead < 0:
            raise ValueError("look_ahead must be non-negative")


class IncrementalMatcher:
    """Greedy look-ahead matcher over a road graph."""

    def __init__(
        self,
        graph: RoadGraph,
        config: IncrementalConfig | None = None,
        route_cache: RouteCache | None = None,
        routing_engine=None,
        vectorized: bool = True,
        batch_routing: bool = True,
    ) -> None:
        self.graph = graph
        self.config = config or IncrementalConfig()
        self.route_cache = route_cache
        #: Gap-fill engine: None (flat Dijkstra), an engine name, or a
        #: prepared CH engine (see :func:`repro.roadnet.make_routing_engine`).
        self.routing_engine = routing_engine
        #: Generate candidates for all fixes in one batched pass
        #: (identical candidates; see
        #: :func:`repro.matching.candidates.candidates_for_points`).
        self.vectorized = vectorized
        #: Resolve each trip's gap queries in one many-to-many batch when
        #: the engine supports it (identical edge sequences; see
        #: :func:`repro.matching.gapfill.connect_matches`).
        self.batch_routing = batch_routing
        self._adjacent: dict[int, set[int]] = {}

    # -- adjacency ------------------------------------------------------------

    def _edges_adjacent(self, edge_id: int) -> set[int]:
        """Edge ids sharing a node with ``edge_id`` (cached)."""
        cached = self._adjacent.get(edge_id)
        if cached is not None:
            return cached
        edge = self.graph.edge(edge_id)
        near = {
            e.edge_id
            for node in (edge.u, edge.v)
            for e in self.graph.out_edges(node, respect_oneway=False)
        }
        near.add(edge_id)
        self._adjacent[edge_id] = near
        return near

    def _connected(self, a: int, b: int) -> bool:
        """Within two adjacency hops (enough for event-sampled city fixes)."""
        if b in self._edges_adjacent(a):
            return True
        return any(b in self._edges_adjacent(mid) for mid in self._edges_adjacent(a))

    # -- matching ---------------------------------------------------------------

    def match(
        self,
        points: list[RoutePoint],
        to_xy,
        segment_id: int = 0,
        car_id: int = 0,
    ) -> MatchedRoute | None:
        """Match a point sequence.

        ``to_xy`` converts a route point to plane coordinates (normally
        ``projector.to_xy(p.lat, p.lon)`` partial).  Returns None when no
        point finds any candidate (off-network data).
        """
        t0 = perf_counter()
        xys = [to_xy(p) for p in points]
        movements = movement_directions(xys)
        if self.vectorized:
            all_candidates = candidates_for_points(
                self.graph, xys, movements, self.config.candidates
            )
        else:
            all_candidates: list[list[Candidate]] = [
                candidates_for_point(self.graph, xy, mv, self.config.candidates)
                for xy, mv in zip(xys, movements)
            ]
        matched: list[MatchedPoint] = []
        prev_edge_id: int | None = None
        for i, (point, cands) in enumerate(zip(points, all_candidates)):
            if not cands:
                continue  # unmatched fix; gap filling bridges it later
            best = max(
                cands,
                key=lambda c: self._decision_score(c, i, all_candidates, prev_edge_id),
            )
            matched.append(
                MatchedPoint(
                    point=point,
                    edge_id=best.edge.edge_id,
                    arc_m=best.arc_m,
                    snapped_xy=best.snapped_xy,
                    match_distance_m=best.distance_m,
                    score=best.score,
                )
            )
            prev_edge_id = best.edge.edge_id
        registry = get_registry()
        registry.counter("matching.calls").inc()
        registry.counter("matching.points_in").inc(len(points))
        registry.counter("matching.points_matched").inc(len(matched))
        registry.counter("matching.candidates_evaluated").inc(
            sum(len(c) for c in all_candidates)
        )
        if not matched:
            registry.counter("matching.unmatched_sequences").inc()
            registry.histogram("matching.match_seconds").observe(
                perf_counter() - t0
            )
            return None
        route = MatchedRoute(segment_id=segment_id, car_id=car_id, matched=matched)
        connect_matches(
            self.graph, route, max_cost_m=self.config.max_gap_cost_m,
            route_cache=self.route_cache, engine=self.routing_engine,
            batch_routing=self.batch_routing,
        )
        registry.histogram("matching.match_seconds").observe(perf_counter() - t0)
        _log.debug(
            "matched segment",
            extra={
                "segment_id": segment_id,
                "points": len(points),
                "matched": len(matched),
                "edges": len(route.edge_sequence),
                "gaps_filled": route.gaps_filled,
            },
        )
        return route

    def _decision_score(
        self,
        candidate: Candidate,
        i: int,
        all_candidates: list[list[Candidate]],
        prev_edge_id: int | None,
    ) -> float:
        score = candidate.score
        if prev_edge_id is not None:
            if candidate.edge.edge_id == prev_edge_id:
                score += self.config.continuity_bonus
            elif not self._connected(prev_edge_id, candidate.edge.edge_id):
                score -= self.config.continuity_bonus
        # Look-ahead: the best connected follow-up chain.
        edge_id = candidate.edge.edge_id
        for j in range(i + 1, min(i + 1 + self.config.look_ahead, len(all_candidates))):
            nxt = all_candidates[j]
            if not nxt:
                break
            connected = [c for c in nxt if self._connected(edge_id, c.edge.edge_id)]
            if not connected:
                score -= self.config.continuity_bonus
                break
            best_next = max(connected, key=lambda c: c.score)
            score += 0.5 * best_next.score
            edge_id = best_next.edge.edge_id
        return score
