"""Command-line interface.

``python -m repro <command>`` drives the pipeline without writing code:

* ``simulate`` — build the synthetic city, run the fleet simulator and
  dump raw route points (CSV) and trip headers (JSONL);
* ``clean`` — run the cleaning pipeline over a route-point CSV and print
  the per-stage report (counts and wall time);
* ``study`` — run the full end-to-end study and write every table and
  figure artefact (text, optionally SVG) into an output directory; with
  ``--input`` the fleet is read back from a route-point CSV instead of
  simulated (the batch half of the stream differential harness);
* ``serve`` — run the streaming micro-batch service over a replayed,
  tailed or fifo route-point feed, folding the same artefacts online
  with bounded memory and optional crash-safe checkpoints;
* ``obs`` — inspect finished runs: ``report`` (funnel waterfall, stage
  tree, slowest units), ``tail``, ``trip`` (one unit's lineage) and
  ``diff`` (two runs' artefacts and comparable metrics);
* ``store`` — inspect (``ls``) and garbage-collect (``gc``) the shard
  store behind ``study --store-dir`` delta recomputation.

Observability: every command accepts ``--log-level``/``--log-json``
(structured logs on stderr) and ``--quiet`` (suppress the human-mode
accounting tables; logging is unaffected).  ``clean``/``study``/
``report`` accept ``--metrics-out FILE`` to dump the run's metrics
registry (counters, latency histograms, stage-timing tree, run
metadata) as JSON, ``--journal-out FILE`` for the append-only run
journal (``study`` always writes ``events.jsonl`` into ``--out``),
``--prom-out FILE`` for an OpenMetrics textfile, and ``--profile`` for
a sampling span profiler (collapsed-stack output).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.cleaning import CleaningPipeline
from repro.faults import (
    ErrorRateExceeded,
    FaultPlan,
    Quarantine,
    RobustnessConfig,
    inject_faults,
)
from repro.parallel import ExecutorConfig, TripExecutor, WorkerPayload
from repro.experiments import (
    OuluStudy,
    StudyConfig,
    fig10_weather_low_speed,
    format_table,
    render_funnel,
    render_table4,
    render_table5,
    seasonal_speed_deltas,
    table2_rule_hits,
    table4_route_summaries,
    table5_cell_speed_strata,
)
from repro.roadnet import ROUTING_ENGINES, build_synthetic_oulu
from repro.store.shards import ShardStore, StoreConfig, StoreError
from repro.stream import StreamConfig, StreamService
from repro.traces import FleetSpec, TaxiFleetSimulator
from repro.traces.io import read_points_csv, write_points_csv, write_trips_jsonl


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Logging flags, accepted both before and after the subcommand.

    ``SUPPRESS`` keeps a subparser from clobbering a value already parsed
    by the root parser (the classic argparse default-override gotcha).
    """
    parser.add_argument(
        "--log-level", default=argparse.SUPPRESS, metavar="LEVEL",
        help="enable pipeline logging at LEVEL (DEBUG/INFO/WARNING/...)",
    )
    parser.add_argument(
        "--log-json", action="store_true", default=argparse.SUPPRESS,
        help="emit logs as one JSON object per line",
    )
    parser.add_argument(
        "--quiet", action="store_true", default=argparse.SUPPRESS,
        help="suppress human-readable accounting output (stdout only; "
             "log level is unaffected)",
    )


def _add_journal_flags(parser: argparse.ArgumentParser) -> None:
    """Run-journal / exporter / profiler flags (clean, study, report)."""
    parser.add_argument(
        "--journal-out", type=Path, default=None, metavar="FILE",
        help="write the append-only run journal (events JSONL; study: "
             "defaults to events.jsonl in --out)",
    )
    parser.add_argument(
        "--prom-out", type=Path, default=None, metavar="FILE",
        help="write the run's metrics as an OpenMetrics textfile",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="sample open spans while the run executes and write a "
             "collapsed-stack profile (see --profile-out)",
    )
    parser.add_argument(
        "--profile-out", type=Path, default=None, metavar="FILE",
        help="collapsed-stack profile path (default: profile.txt in "
             "--out for study, ./profile.txt otherwise)",
    )


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    """Worker-pool flags (default: serial, identical results)."""
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan per-trip work over N worker processes (default: serial)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="trips/transitions per worker chunk (default: auto)",
    )
    parser.add_argument(
        "--route-cache", type=Path, default=None, metavar="FILE",
        help="on-disk Dijkstra route cache to warm gap-filling from "
             "(written back by serial runs only)",
    )
    parser.add_argument(
        "--routing-engine", choices=ROUTING_ENGINES, default="dijkstra",
        help="shortest-path engine for gap filling (default: dijkstra; "
             "ch = precomputed contraction hierarchy)",
    )
    parser.add_argument(
        "--ch-artifact", type=Path, default=None, metavar="FILE",
        help="with --routing-engine ch: prepared hierarchy .npz to load "
             "(created on first use by parallel runs)",
    )
    parser.add_argument(
        "--no-vectorize", action="store_true",
        help="run the scalar reference kernels instead of the NumPy "
             "batch fast path (identical results, slower)",
    )
    parser.add_argument(
        "--batch-routing", action=argparse.BooleanOptionalAction,
        default=True,
        help="resolve each trip's gap-fill queries in one many-to-many "
             "batch on engines that support it (identical results; "
             "default: on)",
    )
    parser.add_argument(
        "--no-vectorize-viterbi", action="store_true",
        help="decode HMM matches with the scalar per-candidate Dijkstra "
             "forward pass instead of the NumPy Viterbi + batched "
             "transition-distance kernel (identical results, slower)",
    )


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    """Degraded-mode execution flags (see docs/robustness.md)."""
    parser.add_argument(
        "--max-error-rate", type=float, default=0.05, metavar="RATE",
        help="quarantined fraction of processed units above which the "
             "run fails (default 0.05)",
    )
    parser.add_argument(
        "--fault-plan", type=Path, default=None, metavar="FILE",
        help="JSON fault plan to inject (chaos testing; see "
             "docs/robustness.md for the schema)",
    )
    parser.add_argument(
        "--errors-out", type=Path, default=None, metavar="FILE",
        help="write quarantined-unit records as JSONL (study: defaults "
             "to errors.jsonl in --out)",
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """Shard-store flags (delta recomputation; see docs/performance.md)."""
    parser.add_argument(
        "--store-dir", type=Path, default=None, metavar="DIR",
        help="persist per-(city, day) stage artefacts in DIR and "
             "recompute only dirty shards on reruns (byte-identical "
             "results; default: $REPRO_STORE_DIR, else disabled)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="disable the shard store even if $REPRO_STORE_DIR is set",
    )


def _store_config(args: argparse.Namespace) -> StoreConfig | None:
    if getattr(args, "no_store", False):
        return None
    path = getattr(args, "store_dir", None)
    if path is None:
        env = os.environ.get("REPRO_STORE_DIR")
        path = Path(env) if env else None
    return StoreConfig(dir=str(path)) if path is not None else None


def _robustness(args: argparse.Namespace) -> RobustnessConfig:
    return RobustnessConfig(max_error_rate=args.max_error_rate)


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    path = getattr(args, "fault_plan", None)
    if path is None:
        return None
    return FaultPlan.from_json(Path(path).read_text())


def _executor_config(args: argparse.Namespace) -> ExecutorConfig:
    route_cache = getattr(args, "route_cache", None)
    ch_artifact = getattr(args, "ch_artifact", None)
    return ExecutorConfig(
        workers=args.workers,
        chunk_size=args.chunk_size,
        route_cache_path=str(route_cache) if route_cache is not None else None,
        routing_engine=getattr(args, "routing_engine", "dijkstra"),
        ch_artifact_path=str(ch_artifact) if ch_artifact is not None else None,
        vectorized=not getattr(args, "no_vectorize", False),
        batch_routing=getattr(args, "batch_routing", True),
        vectorized_viterbi=not getattr(args, "no_vectorize_viterbi", False),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Taxi-trace cleaning, map fusion and information discovery",
    )
    _add_obs_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate the taxi fleet and dump traces")
    sim.add_argument("--days", type=int, default=14)
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument("--points", type=Path, default=Path("points.csv"))
    sim.add_argument("--trips", type=Path, default=None,
                     help="optional trips JSONL output")
    _add_obs_flags(sim)

    clean = sub.add_parser("clean", help="clean and segment a route-point CSV")
    clean.add_argument("points", type=Path)
    clean.add_argument("--metrics-out", type=Path, default=None,
                       help="write the run's metrics registry as JSON")
    _add_obs_flags(clean)
    _add_journal_flags(clean)
    _add_parallel_flags(clean)
    _add_robustness_flags(clean)

    study = sub.add_parser("study", help="run the full study, write artefacts")
    study.add_argument("--days", type=int, default=30)
    study.add_argument("--seed", type=int, default=42)
    study.add_argument("--out", type=Path, default=Path("study_out"))
    study.add_argument("--svg", action="store_true",
                       help="also render Figs. 3/6/9 as SVG")
    study.add_argument("--geojson", action="store_true",
                       help="also export roads/gates/routes/cells as GeoJSON")
    study.add_argument("--metrics-out", type=Path, default=None,
                       help="also write the metrics JSON to this path "
                            "(a metrics.json is always written to --out)")
    study.add_argument("--matcher", choices=("incremental", "hmm"),
                       default="incremental",
                       help="map-matching algorithm (default: incremental)")
    study.add_argument("--input", type=Path, default=None, metavar="CSV",
                       help="read the fleet back from this route-point CSV "
                            "instead of simulating (reader quarantine "
                            "records are prepended to errors.jsonl)")
    _add_obs_flags(study)
    _add_journal_flags(study)
    _add_parallel_flags(study)
    _add_robustness_flags(study)
    _add_store_flags(study)

    serve = sub.add_parser(
        "serve", help="stream a route-point feed through the study fold")
    serve.add_argument("--input", type=Path, required=True, metavar="PATH",
                       help="route-point feed: a CSV (replay), a growing "
                            "CSV (tail) or a named pipe (fifo)")
    serve.add_argument("--mode", choices=("replay", "tail", "fifo"),
                       default="replay",
                       help="how to consume --input (default: replay)")
    serve.add_argument("--days", type=int, default=30)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--out", type=Path, default=Path("serve_out"))
    serve.add_argument("--batch-size", type=int, default=64, metavar="N",
                       help="rows per micro-batch (default: 64)")
    serve.add_argument("--trip-timeout", type=float, default=1800.0,
                       metavar="SECONDS",
                       help="watermark lag that closes a stale open trip")
    serve.add_argument("--window", type=float, default=86_400.0,
                       metavar="SECONDS",
                       help="width of the windowed aggregates (event time)")
    serve.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                       help="checkpoint every N micro-batches (0: disabled)")
    serve.add_argument("--checkpoint-dir", type=Path, default=None,
                       metavar="DIR",
                       help="content-addressed checkpoint directory "
                            "(required with --checkpoint-every)")
    serve.add_argument("--no-resume", action="store_true",
                       help="ignore an existing checkpoint and start fresh")
    serve.add_argument("--idle-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="tail mode: stop after this long without growth")
    serve.add_argument("--live-match", action="store_true",
                       help="feed open trips through a live matcher state "
                            "on arrival (observational)")
    serve.add_argument("--matcher", choices=("incremental", "hmm"),
                       default="incremental",
                       help="map-matching algorithm (default: incremental)")
    serve.add_argument("--metrics-out", type=Path, default=None,
                       help="also write the metrics JSON to this path "
                            "(a metrics.json is always written to --out)")
    _add_obs_flags(serve)
    _add_journal_flags(serve)
    _add_parallel_flags(serve)
    _add_robustness_flags(serve)

    report = sub.add_parser("report", help="run a study and write REPORT.md")
    report.add_argument("--days", type=int, default=30)
    report.add_argument("--seed", type=int, default=42)
    report.add_argument("--out", type=Path, default=Path("REPORT.md"))
    _add_obs_flags(report)
    _add_journal_flags(report)
    _add_parallel_flags(report)
    _add_robustness_flags(report)

    obs_p = sub.add_parser("obs", help="inspect run journals and metrics")
    _add_obs_flags(obs_p)
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render the run report from an events journal")
    obs_report.add_argument("journal", type=Path)
    obs_report.add_argument("--top", type=int, default=10, metavar="N",
                            help="slowest units to list (default 10)")
    obs_tail = obs_sub.add_parser(
        "tail", help="print the last N journal events, one line each")
    obs_tail.add_argument("journal", type=Path)
    obs_tail.add_argument("-n", "--lines", type=int, default=20, metavar="N")
    obs_trip = obs_sub.add_parser(
        "trip", help="full lineage of one unit (trip/segment/transition id)")
    obs_trip.add_argument("journal", type=Path)
    obs_trip.add_argument("unit_id", type=int)
    obs_diff = obs_sub.add_parser(
        "diff", help="compare two run output directories "
                     "(artefacts + comparable metrics; exit 1 on divergence)")
    obs_diff.add_argument("run_a", type=Path)
    obs_diff.add_argument("run_b", type=Path)

    store_p = sub.add_parser("store", help="inspect / maintain a shard store")
    _add_obs_flags(store_p)
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser(
        "ls", help="print the store manifest (one line per artefact)")
    store_ls.add_argument("--store-dir", type=Path, default=None, metavar="DIR",
                          help="store root (default: $REPRO_STORE_DIR)")
    store_ls.add_argument("--json", action="store_true",
                          help="emit the manifest as JSON lines")
    store_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used artefacts")
    store_gc.add_argument("--store-dir", type=Path, default=None, metavar="DIR",
                          help="store root (default: $REPRO_STORE_DIR)")
    store_gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                          help="evict oldest-used artefacts until the store "
                               "fits in N bytes")
    store_gc.add_argument("--max-age", type=float, default=None,
                          metavar="SECONDS",
                          help="evict artefacts not hit within SECONDS")
    return parser


def _say(args: argparse.Namespace, *values) -> None:
    """``print`` unless ``--quiet`` asked for machine-only output."""
    if not getattr(args, "quiet", False):
        print(*values)


def _start_instruments(
    args: argparse.Namespace,
    run_ctx: obs.RunContext,
    command: str,
    journal_default: Path | None = None,
) -> tuple[obs.FileJournal | None, obs.SpanProfiler | None]:
    """Open the run journal and start the span profiler, per flags."""
    journal = None
    path = getattr(args, "journal_out", None) or journal_default
    if path is not None:
        journal = obs.FileJournal(path, run_ctx, extra_meta={"command": command})
    profiler = None
    if getattr(args, "profile", False):
        profiler = obs.SpanProfiler()
        profiler.start()
    return journal, profiler


def _stop_instruments(
    args: argparse.Namespace,
    journal: obs.FileJournal | None,
    profiler: obs.SpanProfiler | None,
    status: str,
    profile_default: Path = Path("profile.txt"),
) -> None:
    if profiler is not None:
        profiler.stop()
        path = getattr(args, "profile_out", None) or profile_default
        profiler.write(path)
        _say(args, f"wrote span profile to {path}")
    if journal is not None:
        journal.close(status)
        _say(args, f"wrote run journal to {journal.path}")


def _run_meta(run_ctx: obs.RunContext, started: float, ended: float) -> dict:
    return {
        **obs.run_metadata(run_ctx),
        "started": round(started, 3),
        "ended": round(ended, 3),
        "wall_seconds": round(ended - started, 3),
    }


def _cmd_simulate(args: argparse.Namespace) -> int:
    city = build_synthetic_oulu()
    spec = FleetSpec(n_days=args.days, seed=args.seed)
    fleet, runs = TaxiFleetSimulator(city, spec).simulate()
    n = write_points_csv(fleet, args.points)
    _say(args, f"wrote {n} route points ({len(fleet)} trips) to {args.points}")
    if args.trips is not None:
        m = write_trips_jsonl(fleet, args.trips)
        _say(args, f"wrote {m} trip headers to {args.trips}")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    registry = obs.MetricsRegistry()
    robustness = _robustness(args)
    plan = _fault_plan(args)
    quarantine = Quarantine(robustness.max_error_rate)
    executor_config = _executor_config(args)
    executor = TripExecutor(
        WorkerPayload(
            vectorized=executor_config.vectorized,
            robustness=robustness,
            fault_plan=plan,
        ),
        executor_config,
    )
    run_ctx = obs.RunContext.create()
    # The journal rides alongside metrics.json when one is requested.
    journal_default = (
        args.metrics_out.parent / "events.jsonl"
        if args.metrics_out is not None else None
    )
    journal, profiler = _start_instruments(args, run_ctx, "clean", journal_default)
    started = time.time()
    status = "error"
    try:
        with obs.use_run_context(run_ctx), obs.use_registry(registry), \
                obs.use_journal(journal or obs.Journal()), inject_faults(plan):
            fleet = read_points_csv(args.points, quarantine=quarantine)
            rows_quarantined = len(quarantine)
            if not len(fleet):
                print(f"no trips in {args.points}", file=sys.stderr)
                return 1
            with executor:
                result = CleaningPipeline(
                    vectorized=executor_config.vectorized, robustness=robustness
                ).run(fleet, executor=executor, quarantine=quarantine)
            try:
                quarantine.check(len(fleet) + rows_quarantined)
            except ErrorRateExceeded as exc:
                _write_errors(args, args.errors_out, quarantine)
                print(f"repro clean: {exc}", file=sys.stderr)
                return 1
        status = "ok"
    finally:
        _stop_instruments(args, journal, profiler, status)
    ended = time.time()
    r = result.report

    def sec(stage: str) -> str:
        return format(r.stage_seconds.get(stage, 0.0), ".3f")

    _say(args, format_table(
        ["Stage", "Count", "Seconds"],
        [
            ["trips in", r.trips_in, "-"],
            ["points in", r.points_in, "-"],
            ["reordered trips repaired", r.reordered_trips, sec("ordering")],
            ["duplicates removed", r.duplicates_removed, sec("duplicates")],
            ["glitches removed", r.outliers_removed, sec("outliers")],
            ["out-of-bounds removed", r.out_of_bounds_removed, sec("bounds")],
            ["segments out", r.segments_out, sec("segmentation")],
            ["dropped (<5 points)", r.segments_dropped_short, sec("segment_filter")],
            ["dropped (>30 km)", r.segments_dropped_long, "-"],
            ["points out", r.points_out, "-"],
        ],
    ))
    _say(args, "rule firings:", dict(r.segmentation.rule_hits))
    if quarantine.errors:
        _say(args, f"quarantined: {len(quarantine)} units "
             f"({rows_quarantined} at ingest, {r.trips_quarantined} trips)")
    _write_errors(args, args.errors_out, quarantine)
    snapshot = registry.snapshot()
    snapshot["meta"] = _run_meta(run_ctx, started, ended)
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, json.dumps(snapshot, indent=2))
        _say(args, f"wrote metrics to {args.metrics_out}")
    if args.prom_out is not None:
        obs.write_textfile(args.prom_out, snapshot)
        _say(args, f"wrote OpenMetrics textfile to {args.prom_out}")
    return 0


def _write_metrics(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")


def _write_errors(
    args: argparse.Namespace, path: Path | None, quarantine: Quarantine
) -> None:
    if path is not None:
        quarantine.write_jsonl(path)
        _say(args, f"wrote {len(quarantine)} quarantine records to {path}")


def _cmd_study(args: argparse.Namespace) -> int:
    config = StudyConfig(
        fleet=FleetSpec(n_days=args.days, seed=args.seed),
        matcher=args.matcher,
        executor=_executor_config(args),
        robustness=_robustness(args),
        faults=_fault_plan(args),
        store=_store_config(args),
    )
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    errors_path: Path = args.errors_out or (out / "errors.jsonl")
    fleet = None
    reader_errors: list = []
    if args.input is not None:
        reader_quarantine = Quarantine()
        # Read under the fault plan so --fault-plan io chaos hits the
        # reader exactly as it hits the streaming service's ingest.
        with inject_faults(config.faults):
            fleet = read_points_csv(args.input, quarantine=reader_quarantine)
        reader_errors = list(reader_quarantine.errors)
        if not len(fleet):
            print(f"no trips in {args.input}", file=sys.stderr)
            return 1
    run_ctx = obs.RunContext.create()
    journal, profiler = _start_instruments(
        args, run_ctx, "study", journal_default=out / "events.jsonl"
    )
    status = "error"
    try:
        with obs.use_journal(journal or obs.Journal()):
            result = OuluStudy(config).run(run_context=run_ctx, fleet=fleet)
        status = "ok"
    except ErrorRateExceeded as exc:
        quarantine = Quarantine()
        quarantine.errors = reader_errors + list(exc.errors)
        quarantine.write_jsonl(errors_path)
        print(f"repro study: {exc}", file=sys.stderr)
        print(f"quarantine records in {errors_path}", file=sys.stderr)
        return 1
    finally:
        _stop_instruments(
            args, journal, profiler, status, profile_default=out / "profile.txt"
        )

    def save(name: str, text: str) -> None:
        (out / name).write_text(text + "\n")

    save("table2.txt", format_table(
        ["Rule", "Description", "Firings"],
        [[r["rule"], r["description"], r["hits"]]
         for r in table2_rule_hits(result.clean)],
    ))
    save("table3.txt", render_funnel(result))
    save("table4.txt", render_table4(table4_route_summaries(result)))
    save("table5.txt", render_table5(table5_cell_speed_strata(result)))
    deltas = seasonal_speed_deltas(result)
    save("fig5.txt", format_table(
        ["Season", "Delta (km/h)"], [[s, round(d, 2)] for s, d in deltas.items()]
    ))
    weather = fig10_weather_low_speed(result, lights_threshold=5)
    save("fig10.txt", format_table(
        ["Temp class", "few lights", "many lights"],
        [[cls, *(("-" if v is None else round(v, 1)) for v in groups.values())]
         for cls, groups in weather.items()],
    ))
    metrics_json = json.dumps(result.metrics, indent=2)
    save("metrics.json", metrics_json)
    quarantine = Quarantine()
    quarantine.errors = reader_errors + list(result.errors)
    quarantine.write_jsonl(errors_path)
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, metrics_json)
    if args.prom_out is not None:
        obs.write_textfile(args.prom_out, result.metrics)
        _say(args, f"wrote OpenMetrics textfile to {args.prom_out}")
    if args.svg:
        from repro.experiments.svgmap import (
            render_fig3_svg,
            render_fig6_svg,
            render_fig9_svg,
        )

        cars = sorted({t.segment.car_id for t, __ in result.kept()})
        if cars:
            save("fig3.svg", render_fig3_svg(result, cars[0]))
        directions = {t.direction for t, __ in result.kept()}
        if directions:
            direction = "L-T" if "L-T" in directions else sorted(directions)[0]
            save("fig6.svg", render_fig6_svg(result, direction))
        if result.mixed is not None:
            save("fig9.svg", render_fig9_svg(result))
    if args.geojson:
        from repro.experiments.geojson import study_geojson

        for name, fc in study_geojson(result).items():
            save(f"{name}.geojson", json.dumps(fc))
    verdict = f"{len(result.errors)} quarantined" if result.errors else "no errors"
    _say(args, f"study complete: {len(result.kept_transitions)} transitions; "
         f"{verdict}; artefacts in {out}/")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    study = StudyConfig(
        fleet=FleetSpec(n_days=args.days, seed=args.seed),
        matcher=args.matcher,
        executor=_executor_config(args),
        robustness=_robustness(args),
        faults=_fault_plan(args),
    )
    try:
        config = StreamConfig(
            study=study,
            input=str(args.input),
            mode=args.mode,
            batch_size=args.batch_size,
            trip_timeout_s=args.trip_timeout,
            window_s=args.window,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=(
                str(args.checkpoint_dir)
                if args.checkpoint_dir is not None else None
            ),
            live_match=args.live_match,
            idle_timeout_s=args.idle_timeout,
        )
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    errors_path: Path = args.errors_out or (out / "errors.jsonl")
    run_ctx = obs.RunContext.create()
    journal, profiler = _start_instruments(
        args, run_ctx, "serve", journal_default=out / "events.jsonl"
    )
    status = "error"
    try:
        with obs.use_journal(journal or obs.Journal()):
            result = StreamService(config).run(
                run_context=run_ctx, resume=not args.no_resume
            )
        status = "ok"
    except ErrorRateExceeded as exc:
        quarantine = Quarantine()
        quarantine.errors = list(exc.errors)
        quarantine.write_jsonl(errors_path)
        print(f"repro serve: {exc}", file=sys.stderr)
        print(f"quarantine records in {errors_path}", file=sys.stderr)
        return 1
    finally:
        _stop_instruments(
            args, journal, profiler, status, profile_default=out / "profile.txt"
        )

    def save(name: str, text: str) -> None:
        (out / name).write_text(text + "\n")

    # The same table artefacts as ``repro study`` (StreamResult is
    # duck-typed to the renderers); the figure generators need retained
    # matched routes, which bounded-memory streaming deliberately drops.
    save("table2.txt", format_table(
        ["Rule", "Description", "Firings"],
        [[r["rule"], r["description"], r["hits"]]
         for r in table2_rule_hits(result.clean)],
    ))
    save("table3.txt", render_funnel(result))
    save("table4.txt", render_table4(table4_route_summaries(result)))
    save("table5.txt", render_table5(table5_cell_speed_strata(result)))
    (out / "windows.jsonl").write_text(
        "".join(json.dumps(w, sort_keys=True) + "\n" for w in result.windows)
    )
    metrics_json = json.dumps(result.metrics, indent=2)
    save("metrics.json", metrics_json)
    quarantine = Quarantine()
    quarantine.errors = list(result.errors)
    quarantine.write_jsonl(errors_path)
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out, metrics_json)
    if args.prom_out is not None:
        obs.write_textfile(args.prom_out, result.metrics)
        _say(args, f"wrote OpenMetrics textfile to {args.prom_out}")
    verdict = f"{len(result.errors)} quarantined" if result.errors else "no errors"
    _say(args, f"stream drained: {result.rows_ingested} rows, "
         f"{result.trips_seen} trips, {result.kept_count} kept transitions; "
         f"{result.checkpoints_written} checkpoints; {verdict}; "
         f"artefacts in {out}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import study_report

    config = StudyConfig(
        fleet=FleetSpec(n_days=args.days, seed=args.seed),
        executor=_executor_config(args),
        robustness=_robustness(args),
        faults=_fault_plan(args),
    )
    run_ctx = obs.RunContext.create()
    journal, profiler = _start_instruments(args, run_ctx, "report")
    status = "error"
    try:
        with obs.use_journal(journal or obs.Journal()):
            result = OuluStudy(config).run(run_context=run_ctx)
        status = "ok"
    except ErrorRateExceeded as exc:
        if args.errors_out is not None:
            quarantine = Quarantine()
            quarantine.errors = list(exc.errors)
            quarantine.write_jsonl(args.errors_out)
        print(f"repro report: {exc}", file=sys.stderr)
        return 1
    finally:
        _stop_instruments(args, journal, profiler, status)
    if args.prom_out is not None:
        obs.write_textfile(args.prom_out, result.metrics)
        _say(args, f"wrote OpenMetrics textfile to {args.prom_out}")
    text = study_report(result)
    args.out.write_text(text)
    _say(args, f"wrote {args.out} ({len(text.splitlines())} lines)")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    path = args.store_dir or (
        Path(os.environ["REPRO_STORE_DIR"])
        if os.environ.get("REPRO_STORE_DIR") else None
    )
    if path is None:
        print("repro store: no --store-dir given and $REPRO_STORE_DIR unset",
              file=sys.stderr)
        return 2
    try:
        store = ShardStore(path)
    except StoreError as exc:
        print(f"repro store: {exc}", file=sys.stderr)
        return 2
    if args.store_command == "ls":
        records = store.ls()
        if args.json:
            for record in records:
                print(json.dumps(record, sort_keys=True))
        else:
            _say(args, format_table(
                ["Shard", "Stage", "Key", "Bytes"],
                [[r["shard"], r["stage"], r["key"][:12], r["bytes"]]
                 for r in records],
            ))
            _say(args, f"{len(records)} artefacts, "
                 f"{sum(r['bytes'] for r in records)} bytes in {path}")
        return 0
    evicted = store.gc(max_bytes=args.max_bytes, max_age_s=args.max_age)
    _say(args, f"evicted {len(evicted)} artefacts "
         f"({sum(r['bytes'] for r in evicted)} bytes) from {path}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import report as obs_report

    if args.obs_command == "report":
        events, metrics = obs_report.load_run(args.journal)
        print(obs_report.render_report(events, metrics, top=args.top))
        return 0
    if args.obs_command == "tail":
        print(obs_report.render_tail(obs.read_journal(args.journal),
                                     n=args.lines))
        return 0
    if args.obs_command == "trip":
        print(obs_report.render_trip(obs.read_journal(args.journal),
                                     args.unit_id))
        return 0
    result = obs_report.diff_runs(args.run_a, args.run_b)
    print("\n".join(result.lines))
    return 1 if result.divergent else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    log_level = getattr(args, "log_level", None)
    log_json = getattr(args, "log_json", False)
    if log_level is not None or log_json:
        try:
            obs.configure(level=log_level or "INFO", json_mode=log_json)
        except ValueError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2
    handlers = {
        "simulate": _cmd_simulate,
        "clean": _cmd_clean,
        "study": _cmd_study,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "obs": _cmd_obs,
        "store": _cmd_store,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # The stdout reader went away (e.g. `repro obs report | head`).
        # Point stdout at devnull so the interpreter's exit flush does
        # not raise a second time, and exit cleanly like other CLIs.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
