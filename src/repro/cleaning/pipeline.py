"""The orchestrated cleaning pipeline.

Runs the paper's preparation stages in order over a whole fleet:

1. ordering repair (Sec. IV.B),
2. duplicate removal,
3. coordinate-glitch filtering,
4. optional bounding-box sanity filter,
5. Table 2 segmentation,
6. segment-level minimum-points / maximum-length filters,

and reports what each stage did — the paper's point that "the range of
actions performed at the preprocessing step filter out errors ...
otherwise effecting the analysis" is only auditable with such a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.cleaning.filters import (
    FilterConfig,
    drop_duplicates,
    filter_segments,
    remove_position_outliers,
    within_bounds,
)
from repro.cleaning.ordering import repair_ordering
from repro.faults import Quarantine, RobustnessConfig, TripError, guarded_call, maybe_inject
from repro.obs import get_journal, get_logger, get_registry, span
from repro.cleaning.segmentation import (
    SegmentationConfig,
    SegmentationReport,
    TripSegment,
    segment_trip,
)
from repro.traces.model import FleetData

_log = get_logger(__name__)

#: Order of the pipeline stages as they appear in reports.
STAGES = (
    "ordering",
    "duplicates",
    "outliers",
    "bounds",
    "segmentation",
    "segment_filter",
)


@dataclass
class CleaningReport:
    """Aggregate per-stage accounting of a pipeline run."""

    trips_in: int = 0
    points_in: int = 0
    reordered_trips: int = 0
    reordering_saved_m: float = 0.0
    duplicates_removed: int = 0
    outliers_removed: int = 0
    out_of_bounds_removed: int = 0
    segmentation: SegmentationReport = field(default_factory=SegmentationReport)
    segments_dropped_short: int = 0
    segments_dropped_long: int = 0
    segments_out: int = 0
    points_out: int = 0
    #: Cumulative wall time per stage (keys from :data:`STAGES`).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Quarantined per-trip failures (only populated with robustness on).
    errors: list[TripError] = field(default_factory=list)

    @property
    def trips_quarantined(self) -> int:
        return len(self.errors)


@dataclass
class TripCleanResult:
    """One trip's worth of cleaning output — the pipeline's unit of work.

    Segment ids are local (1-based within the trip); :meth:`CleaningPipeline.run`
    renumbers them fleet-sequentially in trip order, so chunked parallel
    execution produces exactly the serial ids.
    """

    segments: list[TripSegment]
    reordered: bool = False
    reordering_saved_m: float = 0.0
    duplicates_removed: int = 0
    outliers_removed: int = 0
    out_of_bounds_removed: int = 0
    segmentation: SegmentationReport = field(default_factory=SegmentationReport)
    stage_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class CleanResult:
    """Pipeline output: analysable trip segments plus the report."""

    segments: list[TripSegment]
    report: CleaningReport

    def segments_for_car(self, car_id: int) -> list[TripSegment]:
        return [s for s in self.segments if s.car_id == car_id]


class CleaningPipeline:
    """Configurable cleaning pipeline over raw fleet data."""

    def __init__(
        self,
        filter_config: FilterConfig | None = None,
        segmentation_config: SegmentationConfig | None = None,
        repair: bool = True,
        vectorized: bool = True,
        robustness: RobustnessConfig | None = None,
    ) -> None:
        self.filter_config = filter_config or FilterConfig()
        self.segmentation_config = segmentation_config or SegmentationConfig()
        self.repair = repair
        #: Run ordering repair and segmentation through the NumPy batch
        #: kernels (identical results; see ``repro.geo.vector``).  False
        #: falls back to the scalar reference path (CLI ``--no-vectorize``).
        self.vectorized = vectorized
        #: Degraded-mode execution: with a config, a trip that raises is
        #: quarantined (after bounded retries of transient failures)
        #: instead of aborting the run.  ``None`` keeps the historical
        #: fail-fast behaviour.
        self.robustness = robustness

    def clean_trip(self, trip) -> TripCleanResult:
        """Clean and segment one trip — a pure, parallelisable unit.

        Stages 1-5 run per trip; the fleet-level segment filter (stage 6)
        and sequential segment-id assignment happen in :meth:`run`, so the
        result is independent of which process handles the trip.
        """
        maybe_inject("clean", trip.trip_id)
        stage_s = dict.fromkeys(STAGES[:-1], 0.0)
        result = TripCleanResult(segments=[], stage_seconds=stage_s)
        if self.repair:
            t0 = perf_counter()
            trip, ordering = repair_ordering(trip, vectorized=self.vectorized)
            stage_s["ordering"] += perf_counter() - t0
            if not ordering.was_consistent:
                result.reordered = True
                result.reordering_saved_m = ordering.saved_m
        points = trip.points
        before = len(points)
        t0 = perf_counter()
        points = drop_duplicates(points, self.filter_config)
        stage_s["duplicates"] += perf_counter() - t0
        result.duplicates_removed = before - len(points)
        before = len(points)
        t0 = perf_counter()
        points = remove_position_outliers(points, self.filter_config)
        stage_s["outliers"] += perf_counter() - t0
        result.outliers_removed = before - len(points)
        before = len(points)
        t0 = perf_counter()
        points = within_bounds(points, self.filter_config)
        stage_s["bounds"] += perf_counter() - t0
        result.out_of_bounds_removed = before - len(points)
        trip = trip.with_points(points)
        t0 = perf_counter()
        result.segments, result.segmentation = segment_trip(
            trip, self.segmentation_config, first_segment_id=1,
            vectorized=self.vectorized,
        )
        stage_s["segmentation"] += perf_counter() - t0
        return result

    def clean_trip_unit(self, trip) -> TripCleanResult | TripError:
        """:meth:`clean_trip` behind the degradation guard.

        The unit the serial fold *and* pool workers both run: with
        robustness configured, a raising trip comes back as a
        :class:`~repro.faults.TripError` value (picklable, foldable);
        without it this is exactly :meth:`clean_trip`.  A journal-visible
        ``clean_trip`` detail span times the unit on whichever process
        runs it.
        """
        with span("clean_trip", detail=True, attrs={"trip_id": trip.trip_id}):
            if self.robustness is None:
                return self.clean_trip(trip)
            result, error = guarded_call(
                "clean", self.clean_trip, trip,
                robustness=self.robustness, trip_id=trip.trip_id,
            )
            return error if error is not None else result

    def compute_units(self, trips: list, executor=None) -> list:
        """Per-trip results for ``trips``, serial or pooled.

        The compute half of :meth:`run`, factored out so the shard-store
        planner (:class:`repro.store.planner.StudyPlanner`) can run it
        over just the dirty subset and feed the folded whole back through
        ``per_trip``.
        """
        if executor is not None and executor.parallel:
            return executor.clean_trips(trips)
        return [self.clean_trip_unit(trip) for trip in trips]

    def run(
        self,
        fleet: FleetData,
        executor=None,
        quarantine: Quarantine | None = None,
        per_trip: list | None = None,
    ) -> CleanResult:
        """Clean and segment a whole fleet's raw trips.

        ``executor`` is an optional :class:`repro.parallel.TripExecutor`;
        when it is parallel, trips are cleaned across worker processes.
        Results are folded in trip order and segment ids renumbered
        sequentially, so the output is byte-identical to a serial run.

        ``per_trip`` optionally supplies precomputed per-trip results
        (aligned with ``fleet.trips``) — the shard store's delta path;
        the fold below is identical either way, which is what makes a
        warm cached run byte-identical to a cold one.

        With :attr:`robustness` set, failing trips are quarantined (into
        ``quarantine`` when given, and always onto ``report.errors``)
        and the surviving trips produce exactly the artefacts a
        fault-free run over that surviving subset would.
        """
        report = CleaningReport(trips_in=len(fleet), points_in=fleet.point_count)
        if quarantine is None:
            quarantine = Quarantine()
        stage_s = dict.fromkeys(STAGES, 0.0)
        segments: list[TripSegment] = []
        with span("clean"):
            if per_trip is None:
                per_trip = self.compute_units(fleet.trips, executor)
            journal = get_journal()
            next_segment_id = 1
            for trip, trip_result in zip(fleet.trips, per_trip):
                if isinstance(trip_result, TripError):
                    quarantine.add(trip_result)
                    report.errors.append(trip_result)
                    if journal.enabled:
                        journal.emit(
                            "lineage",
                            unit="trip",
                            trip_id=trip.trip_id,
                            disposition="quarantined",
                            stage=trip_result.stage,
                            reason=trip_result.kind,
                            fault_tag=trip_result.fault_tag,
                        )
                    continue
                if journal.enabled:
                    # Which Table 2 rules fired for this trip, and what
                    # each filter removed — the per-trip provenance the
                    # aggregate report cannot answer.
                    journal.emit(
                        "lineage",
                        unit="trip",
                        trip_id=trip.trip_id,
                        disposition="cleaned",
                        segments=len(trip_result.segments),
                        reordered=trip_result.reordered,
                        duplicates_removed=trip_result.duplicates_removed,
                        outliers_removed=trip_result.outliers_removed,
                        out_of_bounds_removed=trip_result.out_of_bounds_removed,
                        rules={
                            rule: hits
                            for rule, hits in sorted(
                                trip_result.segmentation.rule_hits.items()
                            )
                            if hits
                        },
                    )
                if trip_result.reordered:
                    report.reordered_trips += 1
                    report.reordering_saved_m += trip_result.reordering_saved_m
                report.duplicates_removed += trip_result.duplicates_removed
                report.outliers_removed += trip_result.outliers_removed
                report.out_of_bounds_removed += trip_result.out_of_bounds_removed
                report.segmentation.merge(trip_result.segmentation)
                for stage, seconds in trip_result.stage_seconds.items():
                    stage_s[stage] += seconds
                for segment in trip_result.segments:
                    segment.segment_id = next_segment_id
                    next_segment_id += 1
                segments.extend(trip_result.segments)
            t0 = perf_counter()
            kept, dropped_short, dropped_long = filter_segments(
                segments, self.filter_config
            )
            stage_s["segment_filter"] += perf_counter() - t0
        report.segments_dropped_short = dropped_short
        report.segments_dropped_long = dropped_long
        report.segments_out = len(kept)
        report.points_out = sum(len(s.points) for s in kept)
        report.stage_seconds = stage_s
        self._publish(report)
        return CleanResult(segments=kept, report=report)

    def _publish(self, report: CleaningReport) -> None:
        """Feed the run's accounting to the metrics registry and logger."""
        registry = get_registry()
        for name, value in (
            ("clean.trips_in", report.trips_in),
            ("clean.points_in", report.points_in),
            ("clean.reordered_trips", report.reordered_trips),
            ("clean.duplicates_removed", report.duplicates_removed),
            ("clean.outliers_removed", report.outliers_removed),
            ("clean.out_of_bounds_removed", report.out_of_bounds_removed),
            ("clean.segments_dropped_short", report.segments_dropped_short),
            ("clean.segments_dropped_long", report.segments_dropped_long),
            ("clean.segments_out", report.segments_out),
            ("clean.points_out", report.points_out),
        ):
            registry.counter(name).inc(value)
        for stage, seconds in report.stage_seconds.items():
            registry.gauge(f"clean.stage_seconds.{stage}").set(seconds)
        if _log.isEnabledFor(20):  # INFO
            dropped = {
                "ordering": report.reordered_trips,
                "duplicates": report.duplicates_removed,
                "outliers": report.outliers_removed,
                "bounds": report.out_of_bounds_removed,
                "segmentation": report.segmentation.segments_created,
                "segment_filter": report.segments_dropped_short
                + report.segments_dropped_long,
            }
            for stage in STAGES:
                _log.info(
                    "cleaning stage complete",
                    extra={
                        "stage": stage,
                        "affected": dropped[stage],
                        "seconds": round(report.stage_seconds[stage], 4),
                    },
                )
            _log.info(
                "cleaning complete",
                extra={
                    "trips_in": report.trips_in,
                    "points_in": report.points_in,
                    "segments_out": report.segments_out,
                    "points_out": report.points_out,
                },
            )
