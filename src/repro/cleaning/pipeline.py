"""The orchestrated cleaning pipeline.

Runs the paper's preparation stages in order over a whole fleet:

1. ordering repair (Sec. IV.B),
2. duplicate removal,
3. coordinate-glitch filtering,
4. optional bounding-box sanity filter,
5. Table 2 segmentation,
6. segment-level minimum-points / maximum-length filters,

and reports what each stage did — the paper's point that "the range of
actions performed at the preprocessing step filter out errors ...
otherwise effecting the analysis" is only auditable with such a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cleaning.filters import (
    FilterConfig,
    drop_duplicates,
    filter_segments,
    remove_position_outliers,
    within_bounds,
)
from repro.cleaning.ordering import repair_ordering
from repro.cleaning.segmentation import (
    SegmentationConfig,
    SegmentationReport,
    TripSegment,
    segment_trip,
)
from repro.traces.model import FleetData


@dataclass
class CleaningReport:
    """Aggregate per-stage accounting of a pipeline run."""

    trips_in: int = 0
    points_in: int = 0
    reordered_trips: int = 0
    reordering_saved_m: float = 0.0
    duplicates_removed: int = 0
    outliers_removed: int = 0
    out_of_bounds_removed: int = 0
    segmentation: SegmentationReport = field(default_factory=SegmentationReport)
    segments_dropped_short: int = 0
    segments_dropped_long: int = 0
    segments_out: int = 0
    points_out: int = 0


@dataclass
class CleanResult:
    """Pipeline output: analysable trip segments plus the report."""

    segments: list[TripSegment]
    report: CleaningReport

    def segments_for_car(self, car_id: int) -> list[TripSegment]:
        return [s for s in self.segments if s.car_id == car_id]


class CleaningPipeline:
    """Configurable cleaning pipeline over raw fleet data."""

    def __init__(
        self,
        filter_config: FilterConfig | None = None,
        segmentation_config: SegmentationConfig | None = None,
        repair: bool = True,
    ) -> None:
        self.filter_config = filter_config or FilterConfig()
        self.segmentation_config = segmentation_config or SegmentationConfig()
        self.repair = repair

    def run(self, fleet: FleetData) -> CleanResult:
        """Clean and segment a whole fleet's raw trips."""
        report = CleaningReport(trips_in=len(fleet), points_in=fleet.point_count)
        segments: list[TripSegment] = []
        next_segment_id = 1
        for trip in fleet.trips:
            if self.repair:
                trip, ordering = repair_ordering(trip)
                if not ordering.was_consistent:
                    report.reordered_trips += 1
                    report.reordering_saved_m += ordering.saved_m
            points = trip.points
            before = len(points)
            points = drop_duplicates(points, self.filter_config)
            report.duplicates_removed += before - len(points)
            before = len(points)
            points = remove_position_outliers(points, self.filter_config)
            report.outliers_removed += before - len(points)
            before = len(points)
            points = within_bounds(points, self.filter_config)
            report.out_of_bounds_removed += before - len(points)
            trip = trip.with_points(points)
            trip_segments, seg_report = segment_trip(
                trip, self.segmentation_config, first_segment_id=next_segment_id
            )
            report.segmentation.merge(seg_report)
            next_segment_id += len(trip_segments)
            segments.extend(trip_segments)
        kept, dropped_short, dropped_long = filter_segments(segments, self.filter_config)
        report.segments_dropped_short = dropped_short
        report.segments_dropped_long = dropped_long
        report.segments_out = len(kept)
        report.points_out = sum(len(s.points) for s in kept)
        return CleanResult(segments=kept, report=report)
