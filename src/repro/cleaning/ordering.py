"""Ordering repair (paper Sec. IV.B).

Route points may arrive at the server out of order because of latency
variation, so point-id order and timestamp order can disagree.  The paper
resolves the conflict geometrically: sort the points both ways, compute
the trip distance under each ordering, and judge the shorter one to be
right ("the one with the smaller length is judged as the right
sequence").  All corresponding properties are then re-aligned to the
chosen sequence so both id and timestamp increase monotonically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.traces.arrays import TraceArrays
from repro.traces.model import RoutePoint, Trip, trip_distance_m


@dataclass(frozen=True)
class OrderingReport:
    """What the ordering repair decided for one trip."""

    trip_id: int
    distance_by_id_m: float
    distance_by_time_m: float
    chosen: str                      # "point_id" or "time_s"
    was_consistent: bool             # True when both orderings agreed

    @property
    def saved_m(self) -> float:
        """Distance removed by choosing the better ordering."""
        return abs(self.distance_by_id_m - self.distance_by_time_m)


def repair_ordering(trip: Trip, vectorized: bool = False) -> tuple[Trip, OrderingReport]:
    """Repair a trip's point ordering; returns (repaired trip, report).

    Ties (equal distances, including already-consistent trips) keep the
    id ordering.  After the choice, ids and timestamps are re-assigned from
    their own sorted multisets so both increase monotonically along the
    chosen sequence, as the paper requires.

    With ``vectorized=True`` the trip length under each candidate ordering
    comes from one batched haversine pass over the point columns instead
    of a per-gap scalar loop; the chosen ordering and repaired sequence
    are identical (stable argsort mirrors Python's stable sort).
    """
    if vectorized:
        return _repair_ordering_vec(trip)
    by_id = sorted(trip.points, key=lambda p: p.point_id)
    by_time = sorted(trip.points, key=lambda p: p.time_s)
    d_id = trip_distance_m(by_id)
    d_time = trip_distance_m(by_time)
    consistent = [p.point_id for p in by_id] == [p.point_id for p in by_time]
    if d_time < d_id:
        chosen = "time_s"
        sequence = by_time
    else:
        chosen = "point_id"
        sequence = by_id
    repaired = _realign(sequence)
    report = OrderingReport(
        trip_id=trip.trip_id,
        distance_by_id_m=d_id,
        distance_by_time_m=d_time,
        chosen=chosen,
        was_consistent=consistent,
    )
    return trip.with_points(repaired), report


def _repair_ordering_vec(trip: Trip) -> tuple[Trip, OrderingReport]:
    """Columnar ordering repair — one geometry pass per candidate ordering.

    Stable argsorts reproduce exactly the permutations Python's stable
    ``sorted`` yields, so the chosen sequence — and therefore the repaired
    trip — matches the scalar path point for point.  Only the two distance
    sums are computed differently (batched pairwise summation), which
    cannot flip the choice except for exact float ties, where both paths
    keep the id ordering anyway.
    """
    arrays = TraceArrays.from_trip(trip)
    order_id = np.argsort(arrays.point_id, kind="stable")
    order_time = np.argsort(arrays.time_s, kind="stable")
    d_id = arrays.distance_under(order_id)
    d_time = arrays.distance_under(order_time)
    consistent = bool(
        np.array_equal(arrays.point_id[order_id], arrays.point_id[order_time])
    )
    if d_time < d_id:
        chosen = "time_s"
        sequence = [trip.points[i] for i in order_time]
    else:
        chosen = "point_id"
        sequence = [trip.points[i] for i in order_id]
    repaired = _realign(sequence)
    report = OrderingReport(
        trip_id=trip.trip_id,
        distance_by_id_m=d_id,
        distance_by_time_m=d_time,
        chosen=chosen,
        was_consistent=consistent,
    )
    return trip.with_points(repaired), report


def _realign(sequence: list[RoutePoint]) -> list[RoutePoint]:
    """Make ids and timestamps monotonic along ``sequence``.

    The value multisets are preserved — ids keep being the same ids and
    timestamps the same timestamps — only their assignment to positions
    changes, which is exactly the paper's "aligned with respect to the
    correct sequence to guarantee monotonic increase".
    """
    ids = sorted(p.point_id for p in sequence)
    times = sorted(p.time_s for p in sequence)
    return [
        replace(p, point_id=pid, time_s=ts)
        for p, pid, ts in zip(sequence, ids, times)
    ]
