"""Time-based trip segmentation — the five rules of the paper's Table 2.

Taxis rarely turn the engine off, so a raw trip spans many customer runs.
The rules detect *stops* between consecutive route points and split the
trip there:

1. distance does not change within three minutes -> stop;
2. distance change under 3 km over more than seven minutes -> stop;
3. movement speed below 0.002 m/s -> stop;
4. under 3 km in more than 15 minutes at speed above 0.002 m/s -> stop;
5. after the first round, segments still longer than 40 km are re-split
   with rule 1 at a 1.5-minute interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.distance import haversine_m  # scalar-ok: reference implementation
from repro.traces.arrays import TraceArrays
from repro.traces.model import RoutePoint, Trip, trip_distance_m


@dataclass(frozen=True)
class SegmentationConfig:
    """Thresholds of Table 2 (defaults are the paper's values)."""

    rule1_window_s: float = 180.0          # three minutes
    rule1_epsilon_m: float = 30.0          # "does not change"
    rule2_distance_m: float = 3_000.0
    rule2_window_s: float = 420.0          # seven minutes
    rule3_speed_mps: float = 0.002
    #: Rule 3 needs a minimum gap, or every ordinary traffic-light wait
    #: (two fixes at the same spot a red phase apart) would split the trip.
    #: The paper's rationale caps normal waits at 50-60 s and error waits
    #: at 200 s; two minutes separates dwells from light stops.
    rule3_min_window_s: float = 120.0
    rule4_distance_m: float = 3_000.0
    rule4_window_s: float = 900.0          # fifteen minutes
    rule5_length_m: float = 40_000.0
    rule5_window_s: float = 90.0           # 1.5 minutes


@dataclass
class SegmentationReport:
    """Which rules fired how often across a segmentation run."""

    rule_hits: dict[int, int] = field(default_factory=lambda: {i: 0 for i in range(1, 6)})
    segments_created: int = 0
    trips_processed: int = 0

    def merge(self, other: "SegmentationReport") -> None:
        for rule, hits in other.rule_hits.items():
            self.rule_hits[rule] += hits
        self.segments_created += other.segments_created
        self.trips_processed += other.trips_processed


@dataclass
class TripSegment:
    """A customer-run-sized piece of a raw trip."""

    segment_id: int
    trip_id: int
    car_id: int
    index: int
    points: list[RoutePoint]

    @property
    def start_time_s(self) -> float:
        return self.points[0].time_s if self.points else 0.0

    @property
    def end_time_s(self) -> float:
        return self.points[-1].time_s if self.points else 0.0

    @property
    def duration_s(self) -> float:
        return self.end_time_s - self.start_time_s

    #: Memoized trip length; ``None`` until first access.  Points are never
    #: mutated after construction (the pipeline builds new segments
    #: instead), so the cache cannot go stale.
    _distance_m: float | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def distance_m(self) -> float:
        """Segment length in metres (computed once, then cached).

        The vectorized segmentation path seeds the cache from its gap
        arrays; otherwise the first access walks the points with the
        scalar haversine exactly once.
        """
        if self._distance_m is None:
            self._distance_m = trip_distance_m(self.points)
        return self._distance_m

    @property
    def fuel_ml(self) -> float:
        if not self.points:
            return 0.0
        return self.points[-1].fuel_ml - self.points[0].fuel_ml

    def __len__(self) -> int:
        return len(self.points)


def _stop_rule(
    a: RoutePoint, b: RoutePoint, config: SegmentationConfig, window_1_s: float
) -> int:
    """Which Table 2 rule (1-4) declares the gap a->b a stop; 0 for none."""
    dt = b.time_s - a.time_s
    dist = haversine_m(a.lat, a.lon, b.lat, b.lon)
    if dt >= window_1_s and dist <= config.rule1_epsilon_m:
        return 1
    if dt > config.rule2_window_s and dist < config.rule2_distance_m:
        return 2
    if dt >= config.rule3_min_window_s and dist / dt < config.rule3_speed_mps:
        return 3
    if (
        dt > config.rule4_window_s
        and dist < config.rule4_distance_m
        and (dt > 0 and dist / dt >= config.rule3_speed_mps)
    ):
        return 4
    return 0


def _split_at_stops(
    points: list[RoutePoint],
    config: SegmentationConfig,
    window_1_s: float,
    report: SegmentationReport,
) -> list[list[RoutePoint]]:
    """Split a point sequence wherever a stop rule fires on a gap."""
    if not points:
        return []
    pieces: list[list[RoutePoint]] = []
    current: list[RoutePoint] = [points[0]]
    for a, b in zip(points, points[1:]):
        rule = _stop_rule(a, b, config, window_1_s)
        if rule:
            report.rule_hits[rule] += 1
            if len(current) >= 2:
                pieces.append(current)
            current = [b]
        else:
            current.append(b)
    if len(current) >= 2:
        pieces.append(current)
    return pieces


def _stop_rules_vec(
    dist: np.ndarray, dt: np.ndarray, config: SegmentationConfig, window_1_s: float
) -> np.ndarray:
    """Table 2 rules 1-4 as one array over gaps (0 where no rule fires).

    Each rule is a boolean mask over the gap distance/dt columns; the
    firing rule per gap is the first true mask — exactly the scalar
    :func:`_stop_rule` precedence.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        speed = dist / dt
    m1 = (dt >= window_1_s) & (dist <= config.rule1_epsilon_m)
    m2 = (dt > config.rule2_window_s) & (dist < config.rule2_distance_m)
    m3 = (dt >= config.rule3_min_window_s) & (speed < config.rule3_speed_mps)
    m4 = (
        (dt > config.rule4_window_s)
        & (dist < config.rule4_distance_m)
        & (dt > 0.0)
        & (speed >= config.rule3_speed_mps)
    )
    return np.select([m1, m2, m3, m4], [1, 2, 3, 4], default=0)


def _split_spans_vec(
    lo: int,
    hi: int,
    dist: np.ndarray,
    dt: np.ndarray,
    config: SegmentationConfig,
    window_1_s: float,
    report: SegmentationReport,
) -> list[tuple[int, int]]:
    """Vectorized :func:`_split_at_stops` over the point span ``[lo, hi)``.

    Gap ``g`` (global index) separates points ``g`` and ``g + 1``; a
    firing gap ends the current piece at point ``g``.  Returns kept piece
    spans (at least two points each) as ``(start, end)`` index pairs.
    """
    if hi - lo < 2:
        return []
    rule = _stop_rules_vec(dist[lo : hi - 1], dt[lo : hi - 1], config, window_1_s)
    for r in range(1, 5):
        hits = int(np.count_nonzero(rule == r))
        if hits:
            report.rule_hits[r] += hits
    bounds = [lo, *(lo + int(g) + 1 for g in np.flatnonzero(rule)), hi]
    return [(s, e) for s, e in zip(bounds, bounds[1:]) if e - s >= 2]


def _segment_trip_vec(
    trip: Trip,
    config: SegmentationConfig,
    first_segment_id: int,
) -> tuple[list[TripSegment], SegmentationReport]:
    """Columnar two-round segmentation; identical output to the scalar path.

    All five rule predicates evaluate as boolean masks over the trip's gap
    arrays (one geometry pass for the whole trip, shared by both rounds),
    and the splits fall out of ``np.flatnonzero``.  Piece lengths for the
    rule 5 check are subarray sums of the same gap distances, which also
    seed each segment's :attr:`TripSegment.distance_m` cache.
    """
    report = SegmentationReport(trips_processed=1)
    dist, dt = TraceArrays.from_trip(trip).gaps()
    n = len(trip.points)
    first_round = _split_spans_vec(0, n, dist, dt, config, config.rule1_window_s, report)

    final_spans: list[tuple[int, int]] = []
    for lo, hi in first_round:
        if float(np.sum(dist[lo : hi - 1])) > config.rule5_length_m:
            report.rule_hits[5] += 1
            final_spans.extend(
                _split_spans_vec(lo, hi, dist, dt, config, config.rule5_window_s, report)
            )
        else:
            final_spans.append((lo, hi))

    segments = []
    for i, (lo, hi) in enumerate(final_spans):
        segment = TripSegment(
            segment_id=first_segment_id + i,
            trip_id=trip.trip_id,
            car_id=trip.car_id,
            index=i,
            points=trip.points[lo:hi],
        )
        segment._distance_m = float(np.sum(dist[lo : hi - 1]))
        segments.append(segment)
    report.segments_created = len(segments)
    return segments, report


def segment_trip(
    trip: Trip,
    config: SegmentationConfig | None = None,
    first_segment_id: int = 1,
    vectorized: bool = False,
) -> tuple[list[TripSegment], SegmentationReport]:
    """Apply the Table 2 rules to one raw trip.

    Returns the segments (ids starting at ``first_segment_id``) and a
    report of rule firings.  Rule 5 (re-splitting over-40 km segments with
    a tighter rule-1 window) runs as the second round, as in the paper.

    ``vectorized=True`` evaluates the rules as NumPy masks over the trip's
    gap arrays (see :func:`_segment_trip_vec`); same segments, same rule
    hits, one batched geometry pass instead of a per-gap haversine call.
    """
    config = config or SegmentationConfig()
    if vectorized:
        return _segment_trip_vec(trip, config, first_segment_id)
    report = SegmentationReport(trips_processed=1)
    first_round = _split_at_stops(trip.points, config, config.rule1_window_s, report)

    final_pieces: list[list[RoutePoint]] = []
    for piece in first_round:
        if trip_distance_m(piece) > config.rule5_length_m:
            report.rule_hits[5] += 1
            final_pieces.extend(
                _split_at_stops(piece, config, config.rule5_window_s, report)
            )
        else:
            final_pieces.append(piece)

    segments = [
        TripSegment(
            segment_id=first_segment_id + i,
            trip_id=trip.trip_id,
            car_id=trip.car_id,
            index=i,
            points=piece,
        )
        for i, piece in enumerate(final_pieces)
    ]
    report.segments_created = len(segments)
    return segments, report
