"""Point- and segment-level filters.

The paper filters "the most obvious errors" before analysis: duplicated
uploads, impossible coordinate jumps, and — at the segment level — trip
segments with fewer than five route points or longer than 30 km
(Sec. IV.C: "five measurements for the whole run may give poor
information"; "trips longer than 30 km are unlikely in the local
region").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.distance import haversine_m  # scalar-ok: per-pair filter predicates
from repro.traces.model import RoutePoint, trip_distance_m


@dataclass(frozen=True)
class FilterConfig:
    """Thresholds of the point/segment filters (paper defaults)."""

    max_implied_speed_mps: float = 38.0      # ~137 km/h, impossible downtown
    duplicate_epsilon_m: float = 1.0
    duplicate_epsilon_s: float = 0.5
    min_segment_points: int = 5              # Table 2 post-rule
    max_segment_length_m: float = 30_000.0   # Table 2 post-rule
    bounds: tuple[float, float, float, float] | None = None  # lat0, lon0, lat1, lon1

    def __post_init__(self) -> None:
        if self.max_implied_speed_mps <= 0:
            raise ValueError("max_implied_speed_mps must be positive")
        if self.min_segment_points < 2:
            raise ValueError("min_segment_points must be at least 2")


def drop_duplicates(points: list[RoutePoint], config: FilterConfig) -> list[RoutePoint]:
    """Remove consecutive duplicated fixes (same place, same instant)."""
    if not points:
        return []
    out = [points[0]]
    for p in points[1:]:
        prev = out[-1]
        same_time = abs(p.time_s - prev.time_s) <= config.duplicate_epsilon_s
        same_place = (
            haversine_m(p.lat, p.lon, prev.lat, prev.lon) <= config.duplicate_epsilon_m
        )
        if same_time and same_place:
            continue
        out.append(p)
    return out


def remove_position_outliers(
    points: list[RoutePoint], config: FilterConfig
) -> list[RoutePoint]:
    """Drop coordinate glitches by the implied-speed test.

    A point requiring an impossible speed to reach from the last accepted
    point is a glitch and is dropped.  The first point is trusted unless
    *it* is the glitch — detected by checking whether dropping it makes the
    second hop feasible while keeping it does not.
    """
    if len(points) < 3:
        return list(points)
    pts = list(points)
    # A glitched first point would poison the whole chain; check it first.
    v01 = _implied_speed(pts[0], pts[1])
    v02 = _implied_speed(pts[0], pts[2])
    v12 = _implied_speed(pts[1], pts[2])
    if v01 > config.max_implied_speed_mps and v02 > config.max_implied_speed_mps \
            and v12 <= config.max_implied_speed_mps:
        pts = pts[1:]
    out = [pts[0]]
    for p in pts[1:]:
        if _implied_speed(out[-1], p) <= config.max_implied_speed_mps:
            out.append(p)
    return out


def _implied_speed(a: RoutePoint, b: RoutePoint) -> float:
    dt = abs(b.time_s - a.time_s)
    d = haversine_m(a.lat, a.lon, b.lat, b.lon)
    if dt <= 0.0:
        return float("inf") if d > 1.0 else 0.0
    return d / dt


def within_bounds(points: list[RoutePoint], config: FilterConfig) -> list[RoutePoint]:
    """Drop points outside the configured lat/lon bounding box (if any)."""
    if config.bounds is None:
        return list(points)
    lat0, lon0, lat1, lon1 = config.bounds
    return [
        p for p in points if lat0 <= p.lat <= lat1 and lon0 <= p.lon <= lon1
    ]


def filter_segments(segments: list, config: FilterConfig) -> tuple[list, int, int]:
    """Apply the segment-level filters.

    Returns ``(kept, dropped_short, dropped_long)``.  ``segments`` are
    :class:`~repro.cleaning.segmentation.TripSegment` (duck-typed on
    ``points``).
    """
    kept = []
    dropped_short = 0
    dropped_long = 0
    for seg in segments:
        if len(seg.points) < config.min_segment_points:
            dropped_short += 1
            continue
        # TripSegment memoizes its length (seeded by vectorized
        # segmentation); fall back to a fresh walk for bare duck types.
        length = getattr(seg, "distance_m", None)
        if length is None:
            length = trip_distance_m(seg.points)
        if length > config.max_segment_length_m:
            dropped_long += 1
            continue
        kept.append(seg)
    return kept, dropped_short, dropped_long
