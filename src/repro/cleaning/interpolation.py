"""Gap restoration by linear interpolation.

Jiang et al. [17] (the paper's related work on sensor-data errors)
restore lost traffic data with linear interpolation; the analogue for
trajectories is filling long gaps between route points with straight-line
interpolated fixes, so downstream per-point analyses (the 200 m grid)
are not starved where the device dropped points.  Interpolated points are
flagged by a dedicated id range so they can be excluded where raw
measurements are required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.distance import haversine_m  # scalar-ok: one call per inserted gap point
from repro.traces.model import RoutePoint

#: Interpolated points get ids offset by this, keeping them recognisable.
INTERPOLATED_ID_BASE = 10_000_000


@dataclass(frozen=True)
class InterpolationConfig:
    """When and how densely to fill gaps."""

    max_gap_s: float = 60.0        # gaps longer than this get filled
    target_spacing_s: float = 30.0  # one synthetic fix per this interval
    max_gap_fill_s: float = 600.0  # do not invent data across real stops

    def __post_init__(self) -> None:
        if self.target_spacing_s <= 0 or self.max_gap_s <= 0:
            raise ValueError("spacings must be positive")
        if self.max_gap_s < self.target_spacing_s:
            raise ValueError("max_gap_s must be at least target_spacing_s")


def is_interpolated(point: RoutePoint) -> bool:
    """Was this point synthesised by :func:`interpolate_gaps`?"""
    return point.point_id >= INTERPOLATED_ID_BASE


def interpolate_gaps(
    points: list[RoutePoint], config: InterpolationConfig | None = None
) -> tuple[list[RoutePoint], int]:
    """Fill long time gaps with linearly interpolated fixes.

    Returns ``(points_with_fills, n_added)``.  Gaps longer than
    ``max_gap_fill_s`` are left untouched (they are genuine stops, not
    transmission losses), as are gaps where the vehicle did not move.
    """
    config = config or InterpolationConfig()
    if len(points) < 2:
        return list(points), 0
    out: list[RoutePoint] = [points[0]]
    added = 0
    next_id = INTERPOLATED_ID_BASE
    for a, b in zip(points, points[1:]):
        gap = b.time_s - a.time_s
        moved = haversine_m(a.lat, a.lon, b.lat, b.lon)
        if config.max_gap_s < gap <= config.max_gap_fill_s and moved > 50.0:
            n_fill = int(gap // config.target_spacing_s)
            for k in range(1, n_fill + 1):
                t = k / (n_fill + 1)
                out.append(
                    RoutePoint(
                        point_id=next_id,
                        trip_id=a.trip_id,
                        lat=a.lat + t * (b.lat - a.lat),
                        lon=a.lon + t * (b.lon - a.lon),
                        time_s=a.time_s + t * gap,
                        speed_kmh=a.speed_kmh + t * (b.speed_kmh - a.speed_kmh),
                        fuel_ml=a.fuel_ml + t * (b.fuel_ml - a.fuel_ml),
                    )
                )
                next_id += 1
                added += 1
        out.append(b)
    return out, added


def strip_interpolated(points: list[RoutePoint]) -> list[RoutePoint]:
    """Remove synthetic fixes, recovering the raw measurement sequence."""
    return [p for p in points if not is_interpolated(p)]
