"""Data cleaning pipeline (paper Sec. IV.B-C).

Raw taxi data arrives with transmission reordering, GPS glitches and
duplicates, and raw trips span whole engine-on shifts.  The stages here
restore analysable trip segments:

* :mod:`repro.cleaning.ordering` — the paper's ordering repair: sort route
  points by id and by timestamp, keep whichever sequence yields the
  shorter trip, then re-align properties monotonically;
* :mod:`repro.cleaning.filters` — duplicate removal, coordinate-glitch
  (implied-speed) filtering, bounding-box sanity checks, and the trip
  segment level minimum-points / maximum-length filters;
* :mod:`repro.cleaning.segmentation` — the five time-based segmentation
  rules of Table 2 splitting shifts into customer-run segments;
* :mod:`repro.cleaning.pipeline` — the orchestrated pipeline with a
  per-stage report.
"""

from repro.cleaning.filters import (
    FilterConfig,
    drop_duplicates,
    filter_segments,
    remove_position_outliers,
    within_bounds,
)
from repro.cleaning.interpolation import (
    InterpolationConfig,
    interpolate_gaps,
    is_interpolated,
    strip_interpolated,
)
from repro.cleaning.ordering import OrderingReport, repair_ordering
from repro.cleaning.pipeline import (
    CleaningPipeline,
    CleaningReport,
    CleanResult,
    TripCleanResult,
)
from repro.cleaning.segmentation import (
    SegmentationConfig,
    SegmentationReport,
    TripSegment,
    segment_trip,
)

__all__ = [
    "CleanResult",
    "CleaningPipeline",
    "CleaningReport",
    "FilterConfig",
    "InterpolationConfig",
    "OrderingReport",
    "SegmentationConfig",
    "SegmentationReport",
    "TripCleanResult",
    "TripSegment",
    "drop_duplicates",
    "filter_segments",
    "interpolate_gaps",
    "is_interpolated",
    "remove_position_outliers",
    "repair_ordering",
    "strip_interpolated",
    "segment_trip",
    "within_bounds",
]
