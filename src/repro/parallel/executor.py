"""Process-pool execution of per-trip pipeline work.

:class:`TripExecutor` fans chunks of per-trip tasks (clean, gate-check,
match+gap-fill) over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Each worker builds its context — road network, spatial index, matcher,
Dijkstra route cache — exactly once via the pool initialiser; tasks then
only pay for shipping their own points.

Determinism contract: results come back ordered by input position and
worker registries merge into the ambient registry in chunk order, so a
run with any worker count or chunk size produces exactly the serial
artefacts (only wall-time metrics differ).
"""

from __future__ import annotations

import math
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from time import perf_counter

from repro.obs import (
    TraceCarrier,
    current_parent_span_id,
    current_run,
    current_span,
    get_journal,
    get_logger,
    get_registry,
    new_span_id,
)
from repro.parallel.worker import WorkerPayload, init_worker, run_chunk
from repro.roadnet.routing import ROUTING_ENGINES

_log = get_logger(__name__)

#: Target chunks per worker when no explicit chunk size is given: enough
#: slack for dynamic load balancing, few enough to amortise pickling.
_CHUNKS_PER_WORKER = 4

#: Upper bound on in-flight chunks per worker; submitting everything at
#: once would pickle the whole workload up front.
_INFLIGHT_PER_WORKER = 2


@dataclass(frozen=True)
class ExecutorConfig:
    """How (and whether) to parallelise per-trip work.

    ``workers <= 1`` keeps everything serial and in-process — the
    default, so existing behaviour is unchanged.  ``chunk_size`` fixes
    the batching (default: auto, ~4 chunks per worker).  ``start_method``
    picks the multiprocessing start method (None = platform default).
    ``routing_engine`` selects the gap-fill shortest-path engine
    (``dijkstra``/``astar``/``bidirectional``/``ch``); with ``ch``,
    ``ch_artifact_path`` optionally points at a prepared ``.npz``
    hierarchy that workers load instead of each re-contracting.
    ``vectorized`` runs the cleaning/gate/candidate kernels through the
    NumPy batch fast path (identical results; ``--no-vectorize``).
    ``batch_routing`` resolves each trip's gap-fill queries in one
    many-to-many batch on engines that support it (identical artefacts;
    ``--no-batch-routing``).  ``vectorized_viterbi`` decodes HMM matches
    with the NumPy forward pass and the batched transition-distance
    kernel (identical artefacts; ``--no-vectorize-viterbi``).
    """

    workers: int = 0
    chunk_size: int | None = None
    start_method: str | None = None
    route_cache_size: int = 50_000
    route_cache_path: str | None = None
    routing_engine: str = "dijkstra"
    ch_artifact_path: str | None = None
    vectorized: bool = True
    batch_routing: bool = True
    vectorized_viterbi: bool = True

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.routing_engine not in ROUTING_ENGINES:
            raise ValueError(
                f"routing_engine must be one of {ROUTING_ENGINES}, "
                f"got {self.routing_engine!r}"
            )


class TripExecutor:
    """Chunked process-pool fan-out with a once-per-worker context.

    Use as a context manager; the pool is created lazily on the first
    parallel call and torn down on exit.  A non-parallel executor
    (``workers <= 1``) is inert — pipeline code checks
    :attr:`parallel` and runs inline.
    """

    def __init__(self, payload: WorkerPayload, config: ExecutorConfig | None = None) -> None:
        self.payload = payload
        self.config = config or ExecutorConfig()
        self._pool: ProcessPoolExecutor | None = None

    @property
    def parallel(self) -> bool:
        return self.config.workers > 1

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "TripExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            mp_context = None
            if self.config.start_method is not None:
                import multiprocessing

                mp_context = multiprocessing.get_context(self.config.start_method)
            # Stamp the orchestrator's run identity into the payload at
            # pool creation so every worker installs the same trace_id at
            # init (a pool recycled after a crash re-stamps it too).
            payload = self.payload
            run = current_run()
            if run is not None and payload.run_context != run:
                payload = replace(payload, run_context=run)
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=mp_context,
                initializer=init_worker,
                initargs=(payload,),
            )
            _log.info(
                "worker pool started",
                extra={
                    "workers": self.config.workers,
                    "start_method": self.config.start_method or "default",
                },
            )
        return self._pool

    # -- chunked mapping ----------------------------------------------------

    def _chunk_size(self, n_items: int) -> int:
        if self.config.chunk_size is not None:
            return self.config.chunk_size
        return max(1, math.ceil(n_items / (self.config.workers * _CHUNKS_PER_WORKER)))

    def _recycle_pool(self) -> None:
        """Tear down a broken pool so :meth:`_ensure_pool` rebuilds it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def map_chunked(self, kind: str, items: list) -> list:
        """Run ``kind`` over ``items`` across the pool; ordered results.

        Chunks execute in any order on any worker; results are re-sorted
        by chunk index and worker registries merged into the ambient
        registry in that same order, so output and metrics (minus
        timings) are independent of scheduling.

        Degraded mode: a worker dying mid-chunk (chaos kill, OOM, segv)
        breaks the whole :class:`ProcessPoolExecutor`.  The executor
        recycles the pool and resubmits every chunk whose result had not
        come back — each chunk at most once, so replay can neither
        duplicate nor lose items; a chunk that kills the pool twice
        escalates.  Chunks that completed before the crash keep their
        results, preserving the byte-identical fold for survivors.
        """
        if not self.parallel:
            raise RuntimeError("map_chunked on a serial executor")
        if not items:
            return []
        size = self._chunk_size(len(items))
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        max_inflight = max(self.config.workers * _INFLIGHT_PER_WORKER, self.config.workers + 1)
        plan = self.payload.fault_plan
        kill_index = plan.kill_chunk.get(kind) if plan is not None else None
        registry = get_registry()
        journal = get_journal()
        run = current_run()
        # Per-chunk trace context: each chunk gets a synthetic "chunk"
        # span, minted up front so the carrier can ship its id to the
        # worker before the chunk runs.  The span's journal events are
        # emitted at fold time (in chunk-index order), which keeps the
        # journal layout — and the reconstructed span tree — identical
        # for any worker count or scheduling order.
        chunk_span_ids: list[str] | None = None
        parent_span_id: str | None = None
        if journal.enabled:
            chunk_span_ids = [new_span_id() for _ in chunks]
            enclosing = current_span()
            parent_span_id = (
                enclosing.span_id if enclosing is not None else current_parent_span_id()
            )
        by_chunk: dict[int, tuple[list, object]] = {}
        chunk_seconds: dict[int, float] = {}
        submitted_at: dict[int, float] = {}
        pending: dict[Future, int] = {}
        resubmitted: set[int] = set()
        todo = list(range(len(chunks)))
        pos = 0
        while pos < len(todo) or pending:
            try:
                pool = self._ensure_pool()
                while pos < len(todo) and len(pending) < max_inflight:
                    index = todo[pos]
                    pos += 1
                    inject_kill = index == kill_index and index not in resubmitted
                    trace = None
                    if chunk_span_ids is not None:
                        trace = TraceCarrier(
                            run=run,
                            parent_span_id=chunk_span_ids[index],
                            journal=True,
                        )
                    submitted_at[index] = perf_counter()
                    future = pool.submit(
                        run_chunk, kind, chunks[index], inject_kill, trace
                    )
                    pending[future] = index
                done, __ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    # Only drop from pending once the result is in hand:
                    # a raising future must still count as lost below.
                    index = pending[future]
                    by_chunk[index] = future.result()
                    chunk_seconds[index] = perf_counter() - submitted_at[index]
                    del pending[future]
            except BrokenProcessPool:
                # Harvest results that finished before the pool died.
                for future, index in list(pending.items()):
                    if future.done() and not future.cancelled():
                        try:
                            by_chunk[index] = future.result()
                            chunk_seconds[index] = (
                                perf_counter() - submitted_at[index]
                            )
                        except Exception:  # noqa: BLE001 - crashed future
                            pass
                lost = sorted(i for i in pending.values() if i not in by_chunk)
                repeat = [i for i in lost if i in resubmitted]
                if repeat:
                    raise RuntimeError(
                        f"worker pool died twice on {kind} chunks {repeat}; "
                        "giving up (chunks are resubmitted at most once)"
                    )
                resubmitted.update(lost)
                pending.clear()
                self._recycle_pool()
                todo.extend(lost)
                registry.counter("worker.restarts").inc()
                journal.emit("worker_restart", scope=kind, resubmitted=lost)
                _log.warning(
                    "worker pool broken; restarted and resubmitting chunks",
                    extra={"kind": kind, "resubmitted": lost},
                )
        counter = registry.counter(f"parallel.{kind}_chunks")
        results: list = []
        for index in range(len(chunks)):
            chunk_results, chunk_registry = by_chunk[index]
            if chunk_span_ids is not None:
                journal.emit(
                    "span_open",
                    name=f"{kind}_chunk",
                    span_id=chunk_span_ids[index],
                    parent_id=parent_span_id,
                    trace_id=run.trace_id if run is not None else None,
                    span_kind="chunk",
                    chunk_index=index,
                    items=len(chunks[index]),
                )
                for event in chunk_registry.events:
                    fields = dict(event)
                    journal.emit(fields.pop("kind", "note"), **fields)
                chunk_registry.events.clear()
                journal.emit(
                    "span_close",
                    name=f"{kind}_chunk",
                    span_id=chunk_span_ids[index],
                    seconds=round(chunk_seconds.get(index, 0.0), 6),
                    status="ok",
                )
            results.extend(chunk_results)
            registry.merge(chunk_registry)
            counter.inc()
        registry.counter(f"parallel.{kind}_items").inc(len(items))
        return results

    # -- task-kind entry points (used by pipeline code) ---------------------

    def clean_trips(self, trips: list) -> list:
        """Per-trip cleaning (stages 1-5) across the pool."""
        return self.map_chunked("clean", trips)

    def extract_segments(self, segments: list) -> list:
        """Per-segment gate-check/OD extraction across the pool."""
        return self.map_chunked("extract", segments)

    def match_transitions(self, tasks: list) -> list:
        """Per-transition map-matching + gap-fill across the pool."""
        return self.map_chunked("match", tasks)
