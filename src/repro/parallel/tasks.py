"""Per-item task units shared by the serial path and pool workers.

The executor ships these across process boundaries, so everything here is
plain picklable data plus pure functions over it.  The serial pipeline
runs the *same* functions inline — one code path, two schedulers — which
is what makes serial/parallel byte-identity a structural property rather
than a test-enforced hope.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.faults import RobustnessConfig, TripError, guarded_call, maybe_inject
from repro.matching.types import MatchedRoute
from repro.obs import get_registry, span
from repro.od import Gate, TransitionConfig, endpoints_near_gates
from repro.traces.model import RoutePoint

#: Route-provenance counters, in reporting priority order: the per-task
#: delta of each classifies where the task's gap-fill answers came from
#: (the ``route_source`` field of :class:`MatchOutcome`).
_ROUTE_SOURCE_COUNTERS = (
    ("cache", "routing.route_cache_hits"),
    ("ch", "routing.ch_query_calls"),
    ("dijkstra", "routing.dijkstra_calls"),
    ("astar", "routing.astar_calls"),
    ("bidirectional", "routing.bidirectional_calls"),
)


@dataclass(frozen=True)
class MatchTask:
    """One transition to map-match: funnel stage 5's unit of work.

    Carries only the data a worker needs (the points and identity of the
    transition), not the orchestrator's ``Transition`` object — workers
    report back by ``index``.
    """

    index: int
    points: tuple[RoutePoint, ...]
    segment_id: int
    car_id: int
    origin: str
    destination: str


@dataclass
class MatchOutcome:
    """What matching one transition produced.

    ``route`` is ``None`` when no point found a candidate or the edge
    sequence came back empty (off-network data); ``kept`` is the stage 5
    post-filter verdict, always ``False`` without a route.  ``error`` is
    set when the transition was quarantined by the degradation guard
    (the orchestrator folds it into the run's ``errors.jsonl``).
    """

    index: int
    route: MatchedRoute | None
    kept: bool
    error: TripError | None = None
    #: Wall time this task took on whichever process ran it — worker
    #: facts travel home on the outcome so orchestrator-side lineage is
    #: identical for serial and parallel runs.
    elapsed_s: float = 0.0
    #: Where gap-fill answers came from: ``"cache"``/``"ch"``/
    #: ``"dijkstra"``/... joined with ``+`` when mixed, ``"none"`` when
    #: no shortest-path query was needed.
    route_source: str = "none"


def match_task(
    matcher,
    to_xy,
    gates_by_name: dict[str, Gate],
    config: TransitionConfig | None,
    task: MatchTask,
    robustness: RobustnessConfig | None = None,
) -> MatchOutcome:
    """Match one transition and post-filter it (funnel stage 5).

    Deterministic given the matcher's graph and configs, so any worker —
    or the orchestrator itself — computes the same outcome.  With
    ``robustness`` set, a raising transition (including injected match
    faults and routing timeouts bubbling up from gap-fill) is retried if
    transient and otherwise returned as a quarantined outcome rather
    than propagating.
    """

    def attempt() -> MatchOutcome:
        maybe_inject("match", task.index)
        route = matcher.match(list(task.points), to_xy, task.segment_id, task.car_id)
        if route is None or not route.edge_sequence:
            return MatchOutcome(index=task.index, route=None, kept=False)
        kept = endpoints_near_gates(
            gates_by_name[task.origin],
            gates_by_name[task.destination],
            route.matched[0].snapped_xy,
            route.matched[-1].snapped_xy,
            config,
        )
        return MatchOutcome(index=task.index, route=route, kept=kept)

    registry = get_registry()
    before = [registry.counter(name).value for _, name in _ROUTE_SOURCE_COUNTERS]
    t0 = perf_counter()
    with span(
        "match_one",
        detail=True,
        attrs={"transition_index": task.index, "segment_id": task.segment_id},
    ):
        if robustness is None:
            outcome = attempt()
        else:
            outcome, error = guarded_call(
                "match",
                attempt,
                robustness=robustness,
                segment_id=task.segment_id,
                transition_index=task.index,
            )
            if error is not None:
                outcome = MatchOutcome(
                    index=task.index, route=None, kept=False, error=error
                )
    outcome.elapsed_s = perf_counter() - t0
    sources = [
        label
        for (label, name), start in zip(_ROUTE_SOURCE_COUNTERS, before)
        if registry.counter(name).value > start
    ]
    outcome.route_source = "+".join(sources) if sources else "none"
    return outcome


def study_gates(city) -> list[Gate]:
    """The study's OD gates for a (rebuilt) synthetic city.

    Shared by the orchestrator and worker initialisers so both sides
    derive identical gate geometry from the same :class:`CitySpec`.
    """
    return [
        Gate(name=name, road=road, half_width_m=city.spec.gate_half_width_m)
        for name, road in city.gate_roads.items()
    ]
