"""Per-item task units shared by the serial path and pool workers.

The executor ships these across process boundaries, so everything here is
plain picklable data plus pure functions over it.  The serial pipeline
runs the *same* functions inline — one code path, two schedulers — which
is what makes serial/parallel byte-identity a structural property rather
than a test-enforced hope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import RobustnessConfig, TripError, guarded_call, maybe_inject
from repro.matching.types import MatchedRoute
from repro.od import Gate, TransitionConfig, endpoints_near_gates
from repro.traces.model import RoutePoint


@dataclass(frozen=True)
class MatchTask:
    """One transition to map-match: funnel stage 5's unit of work.

    Carries only the data a worker needs (the points and identity of the
    transition), not the orchestrator's ``Transition`` object — workers
    report back by ``index``.
    """

    index: int
    points: tuple[RoutePoint, ...]
    segment_id: int
    car_id: int
    origin: str
    destination: str


@dataclass
class MatchOutcome:
    """What matching one transition produced.

    ``route`` is ``None`` when no point found a candidate or the edge
    sequence came back empty (off-network data); ``kept`` is the stage 5
    post-filter verdict, always ``False`` without a route.  ``error`` is
    set when the transition was quarantined by the degradation guard
    (the orchestrator folds it into the run's ``errors.jsonl``).
    """

    index: int
    route: MatchedRoute | None
    kept: bool
    error: TripError | None = None


def match_task(
    matcher,
    to_xy,
    gates_by_name: dict[str, Gate],
    config: TransitionConfig | None,
    task: MatchTask,
    robustness: RobustnessConfig | None = None,
) -> MatchOutcome:
    """Match one transition and post-filter it (funnel stage 5).

    Deterministic given the matcher's graph and configs, so any worker —
    or the orchestrator itself — computes the same outcome.  With
    ``robustness`` set, a raising transition (including injected match
    faults and routing timeouts bubbling up from gap-fill) is retried if
    transient and otherwise returned as a quarantined outcome rather
    than propagating.
    """

    def attempt() -> MatchOutcome:
        maybe_inject("match", task.index)
        route = matcher.match(list(task.points), to_xy, task.segment_id, task.car_id)
        if route is None or not route.edge_sequence:
            return MatchOutcome(index=task.index, route=None, kept=False)
        kept = endpoints_near_gates(
            gates_by_name[task.origin],
            gates_by_name[task.destination],
            route.matched[0].snapped_xy,
            route.matched[-1].snapped_xy,
            config,
        )
        return MatchOutcome(index=task.index, route=route, kept=kept)

    if robustness is None:
        return attempt()
    outcome, error = guarded_call(
        "match",
        attempt,
        robustness=robustness,
        segment_id=task.segment_id,
        transition_index=task.index,
    )
    if error is not None:
        return MatchOutcome(index=task.index, route=None, kept=False, error=error)
    return outcome


def study_gates(city) -> list[Gate]:
    """The study's OD gates for a (rebuilt) synthetic city.

    Shared by the orchestrator and worker initialisers so both sides
    derive identical gate geometry from the same :class:`CitySpec`.
    """
    return [
        Gate(name=name, road=road, half_width_m=city.spec.gate_half_width_m)
        for name, road in city.gate_roads.items()
    ]
