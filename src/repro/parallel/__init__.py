"""Parallel per-trip pipeline execution.

The paper's pipeline — clean, segment, gate-check, match, gap-fill — is
embarrassingly parallel per trip: every unit of work depends only on one
trip's points plus the shared read-only road network.  This package
exploits that:

* :mod:`repro.parallel.executor` — :class:`TripExecutor`, a chunked
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out whose workers
  build the road network / spatial index / route cache once each;
* :mod:`repro.parallel.worker` — the worker-process context and chunk
  runner (returns results plus a chunk-local metrics registry);
* :mod:`repro.parallel.tasks` — picklable task units and the pure
  per-item functions shared by the serial and parallel paths.

Results are byte-identical to serial execution for any worker count:
outputs are re-ordered by input position and worker metrics merge in
chunk order (see ``docs/performance.md``).
"""

from repro.parallel.executor import ExecutorConfig, TripExecutor
from repro.parallel.tasks import MatchOutcome, MatchTask, match_task, study_gates
from repro.parallel.worker import WorkerContext, WorkerPayload, init_worker, run_chunk

__all__ = [
    "ExecutorConfig",
    "MatchOutcome",
    "MatchTask",
    "TripExecutor",
    "WorkerContext",
    "WorkerPayload",
    "init_worker",
    "match_task",
    "run_chunk",
    "study_gates",
]
