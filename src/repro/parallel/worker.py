"""Worker-process side of the :class:`~repro.parallel.TripExecutor`.

A worker is initialised exactly once per process with a
:class:`WorkerPayload` — the configs needed to rebuild its execution
context (cleaning pipeline, and for study work the synthetic city, its
spatial index, OD gates, matcher and Dijkstra route cache).  The road
network is deterministic given the :class:`~repro.roadnet.CitySpec`, so
shipping the small spec and rebuilding beats pickling the whole graph
into every task.

Chunks then execute against that long-lived context.  Each chunk records
its metrics into a fresh chunk-local :class:`~repro.obs.MetricsRegistry`
that is returned with the results, so the orchestrator can merge worker
counters/histograms deterministically (in chunk order) — nothing is
written into the contextvar state inherited from the parent process
(:func:`repro.obs.reset_worker_state` clears it at init).
"""

from __future__ import annotations

import os
from contextlib import ExitStack
from dataclasses import dataclass

from repro import obs
from repro.cleaning import CleaningPipeline, FilterConfig, SegmentationConfig
from repro.cleaning.segmentation import TripSegment
from repro.faults import FaultPlan, RobustnessConfig, activate
from repro.obs import (
    BufferJournal,
    MetricsRegistry,
    RunContext,
    TraceCarrier,
    set_run_context,
    use_journal,
    use_parent_span,
    use_registry,
    use_run_context,
)
from repro.parallel.tasks import MatchOutcome, MatchTask, match_task, study_gates
from repro.roadnet import CitySpec, RouteCache, build_synthetic_oulu, make_routing_engine
from repro.od import TransitionConfig, TransitionExtractor


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker needs to rebuild its execution context.

    ``city_spec`` is optional: cleaning-only executors (``repro clean``)
    never build a road network.  ``route_cache_path`` points at an
    optional on-disk route cache every worker warms itself from.
    ``routing_engine`` picks the gap-fill shortest-path engine; with
    ``"ch"`` each worker prepares the contraction hierarchy once at
    init — or loads it from ``ch_artifact_path`` when the orchestrator
    saved a shared ``.npz`` artifact — instead of paying flat Dijkstra
    on every cache-missing query.  ``vectorized`` switches cleaning,
    gate checks and candidate generation to the NumPy batch kernels
    (identical results; CLI ``--no-vectorize`` turns it off).
    ``batch_routing`` resolves each trip's gap-fill queries in one
    many-to-many batch on engines that support it (identical artefacts;
    CLI ``--no-batch-routing`` turns it off).  ``vectorized_viterbi``
    decodes HMM matches with the NumPy forward pass and the batched
    transition-distance kernel (identical artefacts; CLI
    ``--no-vectorize-viterbi`` turns it off).
    """

    filter_config: FilterConfig | None = None
    segmentation_config: SegmentationConfig | None = None
    repair: bool = True
    city_spec: CitySpec | None = None
    transition_config: TransitionConfig | None = None
    matcher: str = "incremental"
    route_cache_size: int = 50_000
    route_cache_path: str | None = None
    routing_engine: str = "dijkstra"
    ch_artifact_path: str | None = None
    vectorized: bool = True
    batch_routing: bool = True
    vectorized_viterbi: bool = True
    #: Degraded-mode execution: per-unit guards + bounded retry inside
    #: every worker (None = historical fail-fast).  ``fault_plan`` ships
    #: the seeded chaos plan each worker activates at init, so injection
    #: decisions are identical in serial and parallel runs.
    robustness: RobustnessConfig | None = None
    fault_plan: FaultPlan | None = None
    #: The orchestrator run's trace identity; workers install it at init
    #: so every worker span carries the same ``trace_id``/``run_id`` as
    #: the orchestrator's.  (The per-chunk parent span travels separately
    #: in a :class:`~repro.obs.TraceCarrier` — it changes per chunk, the
    #: run identity does not.)  The executor stamps this automatically.
    run_context: RunContext | None = None


class WorkerContext:
    """The per-process context chunks execute against."""

    def __init__(self, payload: WorkerPayload) -> None:
        self.payload = payload
        self.pipeline = CleaningPipeline(
            payload.filter_config,
            payload.segmentation_config,
            payload.repair,
            vectorized=payload.vectorized,
            robustness=payload.robustness,
        )
        self.city = None
        self.to_xy = None
        self.gates_by_name = {}
        self.extractor = None
        self.matcher = None
        self.route_cache = None
        self.routing_engine = None
        if payload.city_spec is not None:
            city = build_synthetic_oulu(payload.city_spec)
            projector = city.projector
            self.city = city
            self.to_xy = lambda p: projector.to_xy(p.lat, p.lon)
            gates = study_gates(city)
            self.gates_by_name = {g.name: g for g in gates}
            self.extractor = TransitionExtractor(
                gates,
                city.central_area,
                payload.transition_config,
                vectorized=payload.vectorized,
            )
            self.route_cache = RouteCache(payload.route_cache_size, payload.route_cache_path)
            self.routing_engine = make_routing_engine(
                city.graph,
                payload.routing_engine,
                weight="length",
                ch_artifact=payload.ch_artifact_path,
            )
            if payload.matcher == "hmm":
                from repro.matching import HmmMatcher

                self.matcher = HmmMatcher(
                    city.graph,
                    route_cache=self.route_cache,
                    routing_engine=self.routing_engine,
                    vectorized=payload.vectorized,
                    batch_routing=payload.batch_routing,
                    vectorized_viterbi=payload.vectorized_viterbi,
                )
            else:
                from repro.matching import IncrementalMatcher

                self.matcher = IncrementalMatcher(
                    city.graph,
                    route_cache=self.route_cache,
                    routing_engine=self.routing_engine,
                    vectorized=payload.vectorized,
                    batch_routing=payload.batch_routing,
                )

    # -- chunk handlers (one per task kind) ---------------------------------

    def clean(self, trips: list) -> list:
        return [self.pipeline.clean_trip_unit(trip) for trip in trips]

    def extract(self, segments: list[TripSegment]) -> list:
        if self.extractor is None:
            raise RuntimeError("worker has no city context (city_spec not set)")
        return [self.extractor.extract_segment(seg, self.to_xy) for seg in segments]

    def match(self, tasks: list[MatchTask]) -> list[MatchOutcome]:
        if self.matcher is None:
            raise RuntimeError("worker has no city context (city_spec not set)")
        return [
            match_task(
                self.matcher,
                self.to_xy,
                self.gates_by_name,
                self.payload.transition_config,
                task,
                robustness=self.payload.robustness,
            )
            for task in tasks
        ]


#: The process's context; set once by :func:`init_worker`.
_context: WorkerContext | None = None

#: Metrics recorded while *building* the context (route-cache warm load,
#: CH preparation).  ``init_worker`` runs outside any chunk, so without
#: this capture those counters/gauges would land in the worker's global
#: registry and never reach the orchestrator — which is exactly the bug
#: that made ``routing.route_cache_entries`` read 0 on warm-started
#: parallel runs.  The first chunk each process executes folds it in.
_init_registry: MetricsRegistry | None = None


def init_worker(payload: WorkerPayload) -> None:
    """Process-pool initialiser: build the shared per-worker context.

    Must reset observability state first — a forked worker inherits the
    parent's ambient registry binding and any open span frames, and
    metrics written there would be silently lost.  The orchestrator run's
    trace identity then comes back in via ``payload.run_context``.
    """
    global _context, _init_registry
    obs.reset_worker_state()
    set_run_context(payload.run_context)
    activate(payload.fault_plan)
    _init_registry = MetricsRegistry()
    with use_registry(_init_registry):
        _context = WorkerContext(payload)


def run_chunk(
    kind: str,
    items: list,
    inject_kill: bool = False,
    trace: TraceCarrier | None = None,
) -> tuple[list, MetricsRegistry]:
    """Process one chunk of ``kind`` tasks; return results + chunk metrics.

    The chunk-local registry travels back with the results so the parent
    can fold it into the study's registry; worker-side state never leaks
    between chunks.  With a :class:`~repro.obs.TraceCarrier`, spans
    opened inside the chunk re-parent under the orchestrator's chunk span
    and journal events buffer into ``registry.events`` for chunk-ordered
    replay by the executor.

    ``inject_kill`` is the executor-driven worker-kill fault: the process
    dies *before* touching the chunk, so the resubmitted replay neither
    duplicates nor loses any item.  The executor only ever sets it on a
    chunk's first submission.
    """
    global _init_registry
    if inject_kill:
        os._exit(86)  # hard kill: no cleanup, exactly like an OOM/SIGKILL
    if _context is None:
        # Serial in-process use (or a pool without the initializer):
        # build a context lazily from an empty payload is wrong for
        # city-bound work, so fail loudly instead of guessing.
        raise RuntimeError("run_chunk called before init_worker")
    registry = MetricsRegistry()
    if _init_registry is not None:
        registry.merge(_init_registry)
        _init_registry = None
    handler = getattr(_context, kind)
    with ExitStack() as scopes:
        scopes.enter_context(use_registry(registry))
        if trace is not None:
            if trace.run is not None:
                scopes.enter_context(use_run_context(trace.run))
            scopes.enter_context(use_parent_span(trace.parent_span_id))
            if trace.journal:
                scopes.enter_context(use_journal(BufferJournal(registry.events)))
        results = handler(items)
        if _context.route_cache is not None:
            # Last-write-wins gauge: after the orchestrator's chunk-order
            # merge this reports a live worker cache size instead of the
            # serial-only value (0 on parallel runs before this fix).
            registry.gauge("routing.route_cache_entries").set(
                len(_context.route_cache)
            )
            if trace is not None and trace.journal:
                obs.get_journal().emit(
                    "cache",
                    scope=kind,
                    hits=registry.counter("routing.route_cache_hits").value,
                    misses=registry.counter("routing.route_cache_misses").value,
                    entries=len(_context.route_cache),
                )
    return results, registry
