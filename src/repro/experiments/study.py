"""The end-to-end study orchestrator.

Runs every stage of the paper on the synthetic substrate and keeps all
intermediate artefacts so the table/figure generators (and the benches)
can derive the evaluation outputs without re-running stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cleaning import CleaningPipeline, CleanResult
from repro.faults import (
    FaultPlan,
    Quarantine,
    RobustnessConfig,
    TripError,
    inject_faults,
)
from repro.features import GridAccumulator, GridSpec, cell_feature_counts
from repro.features.routestats import RouteStats, transition_route_stats
from repro.matching import HmmMatcher, IncrementalMatcher, MatchedRoute
from repro.obs import (
    MetricsRegistry,
    RunContext,
    current_run,
    get_journal,
    get_logger,
    run_metadata,
    span,
    use_registry,
    use_run_context,
)
from repro.od import TransitionExtractor
from repro.od.transitions import ExtractionResult, FunnelRow, Transition, TransitionConfig
from repro.parallel import (
    ExecutorConfig,
    MatchTask,
    TripExecutor,
    WorkerPayload,
    match_task,
    study_gates,
)
from repro.roadnet import (
    CitySpec,
    RouteCache,
    SyntheticCity,
    build_synthetic_oulu,
    make_routing_engine,
)
from repro.stats import MixedModelResult, RandomInterceptModel
from repro.store.planner import StudyPlanner
from repro.store.shards import ShardStore, StoreConfig
from repro.traces import CustomerRun, FleetData, FleetSpec, TaxiFleetSimulator

_log = get_logger(__name__)


@dataclass(frozen=True)
class StudyConfig:
    """Everything configurable about a study run."""

    city: CitySpec = field(default_factory=CitySpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    grid: GridSpec = field(default_factory=GridSpec)
    transition: TransitionConfig = field(default_factory=TransitionConfig)
    matcher: str = "incremental"          # or "hmm"
    #: Per-trip parallelism; the default (workers=0) runs fully serial.
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    #: Degraded-mode execution: failing trips/transitions quarantine into
    #: ``result.errors`` instead of aborting, and the run only fails when
    #: the error rate exceeds ``robustness.max_error_rate``.  ``None``
    #: restores strict fail-fast behaviour.
    robustness: RobustnessConfig | None = field(default_factory=RobustnessConfig)
    #: Seeded chaos plan (tests/CLI ``--fault-plan``); None = no faults.
    faults: FaultPlan | None = None
    #: Sharded artefact store (CLI ``--store-dir``): with a config, the
    #: study shards its inputs by (city, day), persists per-shard stage
    #: outputs content-addressed, and on rerun recomputes only dirty
    #: shards — byte-identical artefacts either way.  ``None`` disables
    #: caching entirely.
    store: StoreConfig | None = None

    def __post_init__(self) -> None:
        if self.matcher not in ("incremental", "hmm"):
            raise ValueError("matcher must be 'incremental' or 'hmm'")

    def worker_payload(self) -> WorkerPayload:
        """The context pool workers rebuild (city, matcher, route cache)."""
        return WorkerPayload(
            city_spec=self.city,
            transition_config=self.transition,
            matcher=self.matcher,
            route_cache_size=self.executor.route_cache_size,
            route_cache_path=self.executor.route_cache_path,
            routing_engine=self.executor.routing_engine,
            ch_artifact_path=self.executor.ch_artifact_path,
            vectorized=self.executor.vectorized,
            batch_routing=self.executor.batch_routing,
            vectorized_viterbi=self.executor.vectorized_viterbi,
            robustness=self.robustness,
            fault_plan=self.faults,
        )


@dataclass
class StudyResult:
    """All artefacts of one study run."""

    config: StudyConfig
    city: SyntheticCity
    fleet: FleetData
    runs: list[CustomerRun]
    clean: CleanResult
    extraction: ExtractionResult
    matched: dict[int, MatchedRoute]           # transition index -> route
    kept_transitions: list[int]                # indices surviving post-filter
    route_stats: list[RouteStats]
    grid: GridAccumulator
    cell_features: dict
    mixed: MixedModelResult | None
    funnel: list[FunnelRow]
    #: Metrics snapshot of the run (counters, histograms, stage spans);
    #: what ``repro study --metrics-out`` serialises.
    metrics: dict = field(default_factory=dict)
    #: Quarantined units of the run, in deterministic fold order — what
    #: ``repro study`` writes to ``errors.jsonl``.
    errors: list[TripError] = field(default_factory=list)

    def transitions(self) -> list[Transition]:
        return self.extraction.transitions

    def kept(self) -> list[tuple[Transition, MatchedRoute]]:
        """Post-filtered transitions with their matched routes."""
        return [
            (self.extraction.transitions[i], self.matched[i])
            for i in self.kept_transitions
        ]

    def stats_by_direction(self) -> dict[str, list[RouteStats]]:
        out: dict[str, list[RouteStats]] = {}
        for s in self.route_stats:
            out.setdefault(s.direction, []).append(s)
        return out


class OuluStudy:
    """Reproduces the paper's study end to end."""

    def __init__(self, config: StudyConfig | None = None) -> None:
        self.config = config or StudyConfig()

    def run(
        self,
        run_context: RunContext | None = None,
        fleet: FleetData | None = None,
    ) -> StudyResult:
        """Execute all stages and return the artefact bundle.

        Each run records into a fresh :class:`~repro.obs.MetricsRegistry`;
        its snapshot (per-stage counters, latency histograms and the
        nested stage-timing tree) is attached as ``result.metrics``.
        With ``config.executor.workers > 1`` the per-trip stages fan out
        over a worker pool; worker registries are merged in, and the
        artefacts are identical to a serial run.

        ``run_context`` identifies the run for tracing (defaults to the
        ambient context, or a fresh one); its metadata plus wall-clock
        bounds land in ``result.metrics["meta"]``.

        Degraded mode (``config.robustness``): per-trip and per-transition
        failures — injected by ``config.faults`` or organic — quarantine
        into ``result.errors`` and the run completes on the survivors,
        unless the quarantined fraction exceeds ``max_error_rate``
        (:class:`~repro.faults.ErrorRateExceeded`).

        ``fleet`` replaces the simulation stage with externally supplied
        trips (e.g. a CSV read back via
        :func:`~repro.traces.io.read_points_csv`); ``result.runs`` is
        then empty.  This is the batch baseline the streaming service is
        differential-tested against.
        """
        config = self.config
        run_ctx = run_context or current_run() or RunContext.create()
        registry = MetricsRegistry()
        quarantine = Quarantine(
            config.robustness.max_error_rate
            if config.robustness is not None else None
        )
        started = time.time()
        with use_run_context(run_ctx), use_registry(registry), \
                inject_faults(config.faults), span("study"):
            with TripExecutor(
                config.worker_payload(), config.executor
            ) as executor:
                result = self._run_stages(executor, quarantine, fleet=fleet)
        ended = time.time()
        result.metrics = registry.snapshot()
        result.metrics["meta"] = {
            **run_metadata(run_ctx),
            "started": round(started, 3),
            "ended": round(ended, 3),
            "wall_seconds": round(ended - started, 3),
        }
        result.errors = list(quarantine.errors)
        return result

    def _run_stages(
        self,
        executor: TripExecutor,
        quarantine: Quarantine,
        fleet: FleetData | None = None,
    ) -> StudyResult:
        config = self.config
        with span("build_city"):
            city = build_synthetic_oulu(config.city)
        if (
            executor.parallel
            and config.executor.routing_engine == "ch"
            and config.executor.ch_artifact_path is not None
            and not Path(config.executor.ch_artifact_path).exists()
        ):
            # Contract once in the orchestrator and persist; every pool
            # worker then loads the shared artifact at init instead of
            # re-running the preprocessing per process.
            from repro.roadnet.ch import prepare_ch, save_ch

            save_ch(
                prepare_ch(city.graph, weight="length"),
                config.executor.ch_artifact_path,
            )
        runs: list[CustomerRun] = []
        if fleet is None:
            with span("simulate"):
                simulator = TaxiFleetSimulator(city, config.fleet)
                fleet, runs = simulator.simulate()
        _log.info(
            "fleet simulated",
            extra={"trips": len(fleet), "points": fleet.point_count,
                   "days": config.fleet.n_days},
        )

        # Delta recomputation: with a store configured, a planner shards
        # the fleet by (city, day) and serves each stage's per-unit
        # results from content-addressed artefacts, computing only dirty
        # shards through the exact serial/pooled code paths below.  The
        # folds all stay here, so warm results are byte-identical.
        planner: StudyPlanner | None = None
        if config.store is not None:
            planner = StudyPlanner(ShardStore(config.store.dir), config)
            planner.plan(fleet)

        pipeline = CleaningPipeline(
            vectorized=config.executor.vectorized,
            robustness=config.robustness,
        )
        per_trip = None
        if planner is not None:
            per_trip = planner.clean_stage(
                fleet, lambda trips: pipeline.compute_units(trips, executor)
            )
        clean = pipeline.run(
            fleet, executor=executor, quarantine=quarantine, per_trip=per_trip
        )

        projector = city.projector

        def to_xy(p):
            return projector.to_xy(p.lat, p.lon)

        gates = study_gates(city)
        extractor = TransitionExtractor(
            gates, city.central_area, config.transition,
            vectorized=config.executor.vectorized,
        )
        with span("extract"):
            extractions = None
            if planner is not None:
                extractions = planner.extract_stage(
                    clean.segments,
                    lambda segs: extractor.compute_units(segs, to_xy, executor),
                )
            extraction = extractor.extract(
                clean.segments, to_xy, executor=executor, extractions=extractions
            )

        tasks = [
            MatchTask(
                index=i,
                points=tuple(transition.points()),
                segment_id=transition.segment.segment_id,
                car_id=transition.segment.car_id,
                origin=transition.origin,
                destination=transition.destination,
            )
            for i, transition in enumerate(extraction.transitions)
        ]
        def compute_outcomes(subset: list[MatchTask]) -> list:
            """Match the given tasks through the serial or pooled path."""
            if executor.parallel:
                return executor.match_transitions(subset)
            route_cache = RouteCache(
                config.executor.route_cache_size,
                config.executor.route_cache_path,
            )
            engine = make_routing_engine(
                city.graph,
                config.executor.routing_engine,
                weight="length",
                ch_artifact=config.executor.ch_artifact_path,
            )
            if config.matcher == "hmm":
                matcher = HmmMatcher(
                    city.graph, route_cache=route_cache, routing_engine=engine,
                    vectorized=config.executor.vectorized,
                    batch_routing=config.executor.batch_routing,
                    vectorized_viterbi=config.executor.vectorized_viterbi,
                )
            else:
                matcher = IncrementalMatcher(
                    city.graph, route_cache=route_cache, routing_engine=engine,
                    vectorized=config.executor.vectorized,
                    batch_routing=config.executor.batch_routing,
                )
            computed = [
                match_task(
                    matcher, to_xy, extractor.gates_by_name,
                    config.transition, task,
                    robustness=config.robustness,
                )
                for task in subset
            ]
            if config.executor.route_cache_path is not None:
                route_cache.save()
            return computed

        with span("match"):
            if planner is not None:
                outcomes = planner.match_stage(
                    tasks, extraction.transitions, compute_outcomes
                )
            else:
                outcomes = compute_outcomes(tasks)

        # Fold outcomes back in transition order (chunks may have run in
        # any order on any worker; index order restores serial layout).
        outcomes.sort(key=lambda outcome: outcome.index)
        matched: dict[int, MatchedRoute] = {}
        kept: list[int] = []
        post_per_car: dict[int, int] = {}
        journal = get_journal()
        for outcome in outcomes:
            transition = extraction.transitions[outcome.index]
            if journal.enabled:
                # Per-transition match provenance: latency and route
                # source travel back on the outcome, so the lineage
                # stream is identical for serial and parallel runs.
                journal.emit(
                    "lineage",
                    unit="transition",
                    transition_index=outcome.index,
                    segment_id=transition.segment.segment_id,
                    car_id=transition.segment.car_id,
                    direction=transition.direction,
                    matched=outcome.route is not None,
                    kept=bool(outcome.kept),
                    match_seconds=round(outcome.elapsed_s, 6),
                    route_source=outcome.route_source,
                    quarantined=outcome.error is not None,
                )
            if outcome.error is not None:
                quarantine.add(outcome.error)
            if outcome.route is None:
                transition.post_filtered_ok = False
                continue
            matched[outcome.index] = outcome.route
            transition.post_filtered_ok = outcome.kept
            if outcome.kept:
                kept.append(outcome.index)
                post_per_car[transition.segment.car_id] = (
                    post_per_car.get(transition.segment.car_id, 0) + 1
                )
        _log.info(
            "matching complete",
            extra={"transitions": len(extraction.transitions),
                   "matched": len(matched), "kept": len(kept),
                   "quarantined": len(quarantine)},
        )
        # Degraded-mode verdict: the run is only as good as its error
        # rate.  Units = trips ingested + transitions matched (the two
        # guarded populations); ErrorRateExceeded fails the run here,
        # after every survivor has been accounted for.
        quarantine.check(len(fleet) + len(extraction.transitions))
        funnel = [
            FunnelRow(
                car_id=row.car_id,
                total_segments=row.total_segments,
                filtered_cleaned=row.filtered_cleaned,
                transitions_total=row.transitions_total,
                within_centre=row.within_centre,
                post_filtered=post_per_car.get(row.car_id, 0),
            )
            for row in extraction.funnel
        ]

        # Table 4 statistics and the analysis grid over matched point speeds.
        route_stats: list[RouteStats] = []
        grid = GridAccumulator(config.grid)
        speeds: list[float] = []
        cells: list = []
        with span("features"):
            if planner is not None:
                stats_by_index = planner.features_stage(
                    kept, extraction.transitions, matched,
                    lambda t, r: transition_route_stats(
                        t, r, city.graph, city.map_db
                    ),
                )
            else:
                stats_by_index = {
                    i: transition_route_stats(
                        extraction.transitions[i], matched[i],
                        city.graph, city.map_db,
                    )
                    for i in kept
                }
            # The grid always replays from the matched points — cached or
            # fresh — in kept order; Welford accumulation is order-exact,
            # so the Table 5 grid is identical warm, cold, or store-off.
            for i in kept:
                route_stats.append(stats_by_index[i])
                for m in matched[i].matched:
                    key = grid.add_point(m.snapped_xy, m.point.speed_kmh)
                    speeds.append(m.point.speed_kmh)
                    cells.append(key)

            cell_features = cell_feature_counts(
                config.grid, city.map_db, city.graph, list(grid.cells())
            )

        mixed: MixedModelResult | None = None
        with span("mixed_model"):
            if len(set(cells)) >= 3 and len(speeds) >= 10:
                mixed = RandomInterceptModel().fit(speeds, cells)

        return StudyResult(
            config=config,
            city=city,
            fleet=fleet,
            runs=runs,
            clean=clean,
            extraction=extraction,
            matched=matched,
            kept_transitions=kept,
            route_stats=route_stats,
            grid=grid,
            cell_features=cell_features,
            mixed=mixed,
            funnel=funnel,
        )
