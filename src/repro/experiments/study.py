"""The end-to-end study orchestrator.

Runs every stage of the paper on the synthetic substrate and keeps all
intermediate artefacts so the table/figure generators (and the benches)
can derive the evaluation outputs without re-running stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cleaning import CleaningPipeline, CleanResult
from repro.features import GridAccumulator, GridSpec, cell_feature_counts
from repro.features.routestats import RouteStats, transition_route_stats
from repro.matching import HmmMatcher, IncrementalMatcher, MatchedRoute
from repro.obs import MetricsRegistry, get_logger, span, use_registry
from repro.od import Gate, TransitionExtractor, post_filter_transition
from repro.od.transitions import ExtractionResult, FunnelRow, Transition, TransitionConfig
from repro.roadnet import CitySpec, SyntheticCity, build_synthetic_oulu
from repro.stats import MixedModelResult, RandomInterceptModel
from repro.traces import CustomerRun, FleetData, FleetSpec, TaxiFleetSimulator

_log = get_logger(__name__)


@dataclass(frozen=True)
class StudyConfig:
    """Everything configurable about a study run."""

    city: CitySpec = field(default_factory=CitySpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    grid: GridSpec = field(default_factory=GridSpec)
    transition: TransitionConfig = field(default_factory=TransitionConfig)
    matcher: str = "incremental"          # or "hmm"

    def __post_init__(self) -> None:
        if self.matcher not in ("incremental", "hmm"):
            raise ValueError("matcher must be 'incremental' or 'hmm'")


@dataclass
class StudyResult:
    """All artefacts of one study run."""

    config: StudyConfig
    city: SyntheticCity
    fleet: FleetData
    runs: list[CustomerRun]
    clean: CleanResult
    extraction: ExtractionResult
    matched: dict[int, MatchedRoute]           # transition index -> route
    kept_transitions: list[int]                # indices surviving post-filter
    route_stats: list[RouteStats]
    grid: GridAccumulator
    cell_features: dict
    mixed: MixedModelResult | None
    funnel: list[FunnelRow]
    #: Metrics snapshot of the run (counters, histograms, stage spans);
    #: what ``repro study --metrics-out`` serialises.
    metrics: dict = field(default_factory=dict)

    def transitions(self) -> list[Transition]:
        return self.extraction.transitions

    def kept(self) -> list[tuple[Transition, MatchedRoute]]:
        """Post-filtered transitions with their matched routes."""
        return [
            (self.extraction.transitions[i], self.matched[i])
            for i in self.kept_transitions
        ]

    def stats_by_direction(self) -> dict[str, list[RouteStats]]:
        out: dict[str, list[RouteStats]] = {}
        for s in self.route_stats:
            out.setdefault(s.direction, []).append(s)
        return out


class OuluStudy:
    """Reproduces the paper's study end to end."""

    def __init__(self, config: StudyConfig | None = None) -> None:
        self.config = config or StudyConfig()

    def run(self) -> StudyResult:
        """Execute all stages and return the artefact bundle.

        Each run records into a fresh :class:`~repro.obs.MetricsRegistry`;
        its snapshot (per-stage counters, latency histograms and the
        nested stage-timing tree) is attached as ``result.metrics``.
        """
        registry = MetricsRegistry()
        with use_registry(registry), span("study"):
            result = self._run_stages()
        result.metrics = registry.snapshot()
        return result

    def _run_stages(self) -> StudyResult:
        config = self.config
        with span("build_city"):
            city = build_synthetic_oulu(config.city)
        with span("simulate"):
            simulator = TaxiFleetSimulator(city, config.fleet)
            fleet, runs = simulator.simulate()
        _log.info(
            "fleet simulated",
            extra={"trips": len(fleet), "points": fleet.point_count,
                   "days": config.fleet.n_days},
        )

        clean = CleaningPipeline().run(fleet)

        projector = city.projector

        def to_xy(p):
            return projector.to_xy(p.lat, p.lon)

        gates = [
            Gate(name=name, road=road, half_width_m=city.spec.gate_half_width_m)
            for name, road in city.gate_roads.items()
        ]
        extractor = TransitionExtractor(gates, city.central_area, config.transition)
        with span("extract"):
            extraction = extractor.extract(clean.segments, to_xy)

        if config.matcher == "hmm":
            matcher = HmmMatcher(city.graph)
        else:
            matcher = IncrementalMatcher(city.graph)

        matched: dict[int, MatchedRoute] = {}
        kept: list[int] = []
        post_per_car: dict[int, int] = {}
        with span("match"):
            for i, transition in enumerate(extraction.transitions):
                route = matcher.match(
                    transition.points(), to_xy, transition.segment.segment_id,
                    transition.segment.car_id,
                )
                if route is None or not route.edge_sequence:
                    transition.post_filtered_ok = False
                    continue
                matched[i] = route
                ok = post_filter_transition(
                    transition,
                    route.matched[0].snapped_xy,
                    route.matched[-1].snapped_xy,
                    extractor.gates_by_name,
                    config.transition,
                )
                if ok:
                    kept.append(i)
                    post_per_car[transition.segment.car_id] = (
                        post_per_car.get(transition.segment.car_id, 0) + 1
                    )
        _log.info(
            "matching complete",
            extra={"transitions": len(extraction.transitions),
                   "matched": len(matched), "kept": len(kept)},
        )
        funnel = [
            FunnelRow(
                car_id=row.car_id,
                total_segments=row.total_segments,
                filtered_cleaned=row.filtered_cleaned,
                transitions_total=row.transitions_total,
                within_centre=row.within_centre,
                post_filtered=post_per_car.get(row.car_id, 0),
            )
            for row in extraction.funnel
        ]

        # Table 4 statistics and the analysis grid over matched point speeds.
        route_stats: list[RouteStats] = []
        grid = GridAccumulator(config.grid)
        speeds: list[float] = []
        cells: list = []
        with span("features"):
            for i in kept:
                transition = extraction.transitions[i]
                route = matched[i]
                route_stats.append(
                    transition_route_stats(transition, route, city.graph, city.map_db)
                )
                for m in route.matched:
                    key = grid.add_point(m.snapped_xy, m.point.speed_kmh)
                    speeds.append(m.point.speed_kmh)
                    cells.append(key)

            cell_features = cell_feature_counts(
                config.grid, city.map_db, city.graph, list(grid.cells())
            )

        mixed: MixedModelResult | None = None
        with span("mixed_model"):
            if len(set(cells)) >= 3 and len(speeds) >= 10:
                mixed = RandomInterceptModel().fit(speeds, cells)

        return StudyResult(
            config=config,
            city=city,
            fleet=fleet,
            runs=runs,
            clean=clean,
            extraction=extraction,
            matched=matched,
            kept_transitions=kept,
            route_stats=route_stats,
            grid=grid,
            cell_features=cell_features,
            mixed=mixed,
            funnel=funnel,
        )
