"""Extension experiments beyond the paper's headline analysis.

The paper's model (2) allows fixed covariates alongside the random cell
intercept ("X may include ... the map features such as the number of
traffic lights, bus stops, pedestrian crossings or crossings for the
cell") but only evaluates the intercept-only model (3).  This module
completes the thought: the covariate mixed model, and the pedestrian
fusion the conclusions ask for.
"""

from __future__ import annotations

from repro.analysis.pedestrians import PedestrianModel, fuse_with_intercepts
from repro.experiments.study import StudyResult
from repro.stats.mixed import MixedModelResult, RandomInterceptModel
from repro.stats.ols import OlsResult

#: Cell-level map features used as fixed effects, in model order.
FEATURE_NAMES = ("traffic_lights", "bus_stops", "pedestrian_crossings", "junctions")


def covariate_mixed_model(result: StudyResult) -> MixedModelResult:
    """Model (2): point speed ~ cell map features + (1 | cell).

    Each matched point carries the feature counts of its cell as
    covariates; the random intercept absorbs what geography explains
    beyond the counted features.
    """
    speeds: list[float] = []
    cells: list = []
    covariates: dict[str, list[float]] = {name: [] for name in FEATURE_NAMES}
    for __, route in result.kept():
        for m in route.matched:
            key = result.config.grid.cell_of(m.snapped_xy)
            features = result.cell_features.get(key, {})
            speeds.append(m.point.speed_kmh)
            cells.append(key)
            for name in FEATURE_NAMES:
                covariates[name].append(float(features.get(name, 0)))
    return RandomInterceptModel().fit(speeds, cells, covariates=covariates)


def pedestrian_fusion(result: StudyResult, hour: int = 14) -> OlsResult:
    """Regress cell intercepts on WiFi crowd counts, controlling for
    static map features (the paper's area-B explanation, quantified)."""
    if result.mixed is None:
        raise ValueError("study has no mixed model")
    model = PedestrianModel(result.city)
    counts = model.cell_counts(result.config.grid, hour=hour)
    return fuse_with_intercepts(result.mixed.blup, counts, result.cell_features)
