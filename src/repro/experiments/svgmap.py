"""SVG renderings of the map figures.

The paper's Figs. 3, 6 and 9 are QGIS maps; this module renders the same
content as standalone SVG files with no dependencies: the road network as
line work, gates highlighted, point speeds as a coloured scatter
(Fig. 3), and per-cell values as a choropleth (Figs. 6/9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.study import StudyResult
from repro.features.grid import CellKey


@dataclass(frozen=True)
class SvgCanvas:
    """World-to-SVG transform over a fixed viewport."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    width: int = 800

    @property
    def scale(self) -> float:
        return self.width / (self.x_max - self.x_min)

    @property
    def height(self) -> int:
        return int(round((self.y_max - self.y_min) * self.scale))

    def to_px(self, x: float, y: float) -> tuple[float, float]:
        """World metres -> SVG pixels (y axis flipped)."""
        px = (x - self.x_min) * self.scale
        py = (self.y_max - y) * self.scale
        return (round(px, 1), round(py, 1))


def speed_colour(v_kmh: float, v_max: float = 60.0) -> str:
    """Red (slow) -> yellow -> green (fast) colour ramp."""
    t = max(0.0, min(1.0, v_kmh / max(v_max, 1e-9)))
    if t < 0.5:
        r, g = 220, int(40 + (2 * t) * 180)
    else:
        r, g = int(220 - (2 * t - 1.0) * 180), 220
    return f"rgb({r},{g},40)"


def diverging_colour(value: float, scale: float = 15.0) -> str:
    """Blue (negative) -> white -> red (positive) ramp for intercepts."""
    t = max(-1.0, min(1.0, value / max(scale, 1e-9)))
    if t < 0:
        k = int(255 * (1.0 + t))
        return f"rgb({k},{k},255)"
    k = int(255 * (1.0 - t))
    return f"rgb(255,{k},{k})"


def _road_layer(result: StudyResult, canvas: SvgCanvas) -> list[str]:
    parts = ['<g stroke="#999" stroke-width="1" fill="none">']
    for edge in result.city.graph.edges():
        coords = edge.geometry.coords
        points = " ".join(
            "{},{}".format(*canvas.to_px(float(x), float(y)))
            for x, y in coords
        )
        parts.append(f'<polyline points="{points}"/>')
    parts.append("</g>")
    # Gates in a highlight colour.
    parts.append('<g stroke="#d33" stroke-width="4" fill="none">')
    for name, road in result.city.gate_roads.items():
        points = " ".join(
            "{},{}".format(*canvas.to_px(float(x), float(y)))
            for x, y in road.coords
        )
        parts.append(f'<polyline points="{points}"><title>gate {name}</title></polyline>')
    parts.append("</g>")
    return parts


def _canvas_for(result: StudyResult, pad: float = 150.0) -> SvgCanvas:
    x0, y0, x1, y1 = result.city.graph.bounds()
    return SvgCanvas(x0 - pad, y0 - pad, x1 + pad, y1 + pad)


def _document(canvas: SvgCanvas, body: list[str], title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{canvas.width}" '
        f'height="{canvas.height}" viewBox="0 0 {canvas.width} {canvas.height}">'
    )
    caption = (
        f'<text x="10" y="20" font-family="sans-serif" font-size="14">{title}</text>'
    )
    return "\n".join([head, '<rect width="100%" height="100%" fill="white"/>',
                      *body, caption, "</svg>"])


def render_fig3_svg(result: StudyResult, car_id: int = 1) -> str:
    """Fig. 3 as SVG: matched point speeds of one taxi on the map."""
    from repro.experiments.figures import fig3_speed_points

    canvas = _canvas_for(result)
    body = _road_layer(result, canvas)
    body.append("<g>")
    for x, y, v in fig3_speed_points(result, car_id):
        px, py = canvas.to_px(x, y)
        body.append(
            f'<circle cx="{px}" cy="{py}" r="2.5" fill="{speed_colour(v)}"/>'
        )
    body.append("</g>")
    return _document(
        canvas, body, f"Fig. 3 - cleaned point speeds, taxi {car_id} (red=slow)"
    )


def render_cells_svg(
    result: StudyResult,
    values: dict[CellKey, float],
    title: str,
    diverging: bool = False,
) -> str:
    """A per-cell choropleth over the road map (Figs. 6 and 9)."""
    canvas = _canvas_for(result)
    size = result.config.grid.cell_size_m
    body = ['<g stroke="#555" stroke-width="0.4" fill-opacity="0.75">']
    for key, value in values.items():
        cx, cy = result.config.grid.cell_centre(key)
        px, py = canvas.to_px(cx - size / 2.0, cy + size / 2.0)
        side = round(size * canvas.scale, 1)
        colour = diverging_colour(value) if diverging else speed_colour(value)
        body.append(
            f'<rect x="{px}" y="{py}" width="{side}" height="{side}" '
            f'fill="{colour}"><title>{key}: {value:.1f}</title></rect>'
        )
    body.append("</g>")
    body.extend(_road_layer(result, canvas))
    return _document(canvas, body, title)


def render_fig6_svg(result: StudyResult, direction: str = "L-T") -> str:
    """Fig. 6 as SVG: average cell speeds along one OD direction."""
    from repro.experiments.figures import fig6_cell_features

    cells = fig6_cell_features(result, direction)
    values = {key: info["avg_speed"] for key, info in cells.items()}
    return render_cells_svg(
        result, values, f"Fig. 6 - average speed per cell, {direction}"
    )


def render_fig9_svg(result: StudyResult) -> str:
    """Fig. 9 as SVG: BLUP cell intercepts on the map."""
    if result.mixed is None:
        raise ValueError("study has no mixed model")
    values = dict(result.mixed.blup)
    return render_cells_svg(
        result, values,
        "Fig. 9 - cell intercepts (blue=slower, red=faster)",
        diverging=True,
    )
