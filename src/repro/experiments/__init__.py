"""Experiment reproduction layer.

:class:`~repro.experiments.study.OuluStudy` runs the complete pipeline
(city -> fleet -> cleaning -> OD selection -> map matching -> feature
fusion -> statistics); :mod:`repro.experiments.tables` and
:mod:`repro.experiments.figures` derive every table and figure of the
paper's evaluation from the study result; :mod:`repro.experiments.rendering`
prints them in the paper's layout.
"""

from repro.experiments.figures import (
    fig3_speed_points,
    fig4_direction_speeds,
    fig5_season_speeds,
    fig6_cell_features,
    fig7_qq,
    fig8_intercepts,
    fig9_intercept_map,
    fig10_weather_low_speed,
    seasonal_speed_deltas,
)
from repro.experiments.rendering import (
    format_table,
    render_funnel,
    render_series,
    render_table4,
    render_table5,
)
from repro.experiments.study import OuluStudy, StudyConfig, StudyResult
from repro.experiments.tables import (
    table1_junction_pairs,
    table2_rule_hits,
    table3_funnel,
    table4_route_summaries,
    table5_cell_speed_strata,
)

__all__ = [
    "OuluStudy",
    "StudyConfig",
    "StudyResult",
    "fig10_weather_low_speed",
    "fig3_speed_points",
    "fig4_direction_speeds",
    "fig5_season_speeds",
    "fig6_cell_features",
    "fig7_qq",
    "fig8_intercepts",
    "fig9_intercept_map",
    "format_table",
    "render_funnel",
    "render_series",
    "render_table4",
    "render_table5",
    "seasonal_speed_deltas",
    "table1_junction_pairs",
    "table2_rule_hits",
    "table3_funnel",
    "table4_route_summaries",
    "table5_cell_speed_strata",
]
