"""Plain-text rendering of tables and figure data.

The benchmarks print the same rows the paper reports; these helpers keep
the layout consistent and readable in test/bench output.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.study import StudyResult
from repro.experiments.tables import DIRECTIONS, TABLE4_METRICS


def format_table(headers: Sequence[str], rows: Sequence[Sequence], digits: int = 3) -> str:
    """Render a list-of-rows table with aligned columns."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.{digits}f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_funnel(result: StudyResult) -> str:
    """Table 3 as text."""
    headers = [
        "Car", "Trip segments (total)", "Filtered and cleaned",
        "Transitions total", "Within city centre", "Post-filtered",
    ]
    rows = [
        [r.car_id, r.total_segments, r.filtered_cleaned,
         r.transitions_total, r.within_centre, r.post_filtered]
        for r in result.funnel
    ]
    return format_table(headers, rows)


def render_table4(summaries: dict) -> str:
    """Table 4 as text: metrics x directions, six numbers each."""
    headers = ["Metric", "Route", "Min", "1st Q", "Med", "Mean", "3rd Q", "Max"]
    rows = []
    for metric, label in TABLE4_METRICS:
        for direction in DIRECTIONS:
            summary = summaries.get(metric, {}).get(direction)
            if summary is None:
                continue
            rows.append([label, direction, *summary.as_row()])
    return format_table(headers, rows)


def render_table5(strata: dict) -> str:
    """Table 5 as text."""
    headers = ["Statistic", "lights=0", "lights=0,bus=0", "lights>0,bus>0", "lights>0"]
    order = ["min", "max", "mean", "var"]
    rows = []
    for stat in order:
        rows.append(
            [stat]
            + [strata[col][stat] for col in
               ("lights=0", "lights=0,bus=0", "lights>0,bus>0", "lights>0")]
        )
    return format_table(headers, rows, digits=2)


def render_series(title: str, pairs: Sequence[tuple], digits: int = 2) -> str:
    """A labelled two-column series (used for figure data)."""
    lines = [title]
    for a, b in pairs:
        fa = f"{a:.{digits}f}" if isinstance(a, float) else str(a)
        fb = f"{b:.{digits}f}" if isinstance(b, float) else str(b)
        lines.append(f"  {fa:>12}  {fb}")
    return "\n".join(lines)
