"""Figure generators — the data series behind Figs. 3-10.

Figures are reproduced as structured data (positions, series, intervals);
the paper's maps are scatter data over the local metric plane.
"""

from __future__ import annotations

from repro.experiments.study import StudyResult
from repro.stats.descriptive import mean
from repro.stats.qq import normal_qq
from repro.weather.roadweather import RoadWeatherModel, TEMPERATURE_CLASSES
from repro.weather.seasons import SEASONS, season_of


def _kept_matched(result: StudyResult, car_id: int | None = None):
    """(transition, route) pairs surviving the post-filter, optionally per car."""
    for transition, route in result.kept():
        if car_id is None or transition.segment.car_id == car_id:
            yield transition, route


def fig3_speed_points(result: StudyResult, car_id: int = 1) -> list[tuple[float, float, float]]:
    """Fig. 3: cleaned and matched point speeds of one taxi as (x, y, kmh)."""
    out = []
    for __, route in _kept_matched(result, car_id):
        for m in route.matched:
            out.append((m.snapped_xy[0], m.snapped_xy[1], m.point.speed_kmh))
    return out


def fig4_direction_speeds(result: StudyResult, car_id: int = 1) -> dict[str, list[float]]:
    """Fig. 4: point speeds of one taxi grouped by OD direction."""
    out: dict[str, list[float]] = {}
    for transition, route in _kept_matched(result, car_id):
        bucket = out.setdefault(transition.direction, [])
        bucket.extend(m.point.speed_kmh for m in route.matched)
    return out


def fig5_season_speeds(result: StudyResult, car_id: int = 1) -> dict[str, list[float]]:
    """Fig. 5: point speeds of one taxi grouped by season."""
    out: dict[str, list[float]] = {}
    for transition, route in _kept_matched(result, car_id):
        season = season_of(transition.segment.start_time_s).value
        bucket = out.setdefault(season, [])
        bucket.extend(m.point.speed_kmh for m in route.matched)
    return out


def seasonal_speed_deltas(result: StudyResult) -> dict[str, float]:
    """Per-season mean-speed delta vs the annual mean (all cars).

    The paper reports winter -0.07, spring +0.46, summer +0.70 and autumn
    +1.38 km/h; the reproduction target is the ordering.  Deltas are
    direction-adjusted (computed within each OD direction, then averaged
    weighted by sample size) so a seasonal imbalance in which routes were
    driven does not masquerade as a weather effect.
    """
    per_cell: dict[tuple[str, str], list[float]] = {}
    per_direction: dict[str, list[float]] = {}
    for transition, route in _kept_matched(result):
        season = season_of(transition.segment.start_time_s).value
        speeds = [m.point.speed_kmh for m in route.matched]
        per_cell.setdefault((transition.direction, season), []).extend(speeds)
        per_direction.setdefault(transition.direction, []).extend(speeds)
    if not per_direction:
        return {}
    out: dict[str, float] = {}
    for season in SEASONS:
        weighted = 0.0
        weight = 0.0
        for direction, all_speeds in per_direction.items():
            speeds = per_cell.get((direction, season.value))
            if not speeds:
                continue
            weighted += len(speeds) * (mean(speeds) - mean(all_speeds))
            weight += len(speeds)
        if weight > 0:
            out[season.value] = weighted / weight
    return out


def fig6_cell_features(result: StudyResult, direction: str = "L-T") -> dict:
    """Fig. 6: per-cell average speed and feature counts for one direction.

    Returns ``{cell: {"centre": (x, y), "avg_speed": kmh, "n": count,
    "traffic_lights": n, "bus_stops": n, "pedestrian_crossings": n,
    "junctions": n}}`` over cells visited by that direction's transitions.
    """
    from repro.features import GridAccumulator

    grid = GridAccumulator(result.config.grid)
    for transition, route in _kept_matched(result):
        if transition.direction != direction:
            continue
        for m in route.matched:
            grid.add_point(m.snapped_xy, m.point.speed_kmh)
    out = {}
    for key, stats in grid.cells().items():
        features = result.cell_features.get(
            key,
            {"traffic_lights": 0, "bus_stops": 0, "pedestrian_crossings": 0, "junctions": 0},
        )
        out[key] = {
            "centre": result.config.grid.cell_centre(key),
            "avg_speed": stats.mean,
            "n": stats.n,
            **features,
        }
    return out


def fig7_qq(result: StudyResult) -> list[tuple[float, float]]:
    """Fig. 7: QQ plot of the BLUP cell intercepts."""
    if result.mixed is None:
        return []
    return normal_qq(result.mixed.blup.values())


def fig8_intercepts(result: StudyResult) -> list[dict]:
    """Fig. 8: cell intercepts with confidence limits, sorted by value."""
    if result.mixed is None:
        return []
    rows = []
    for group in result.mixed.groups:
        lo, hi = result.mixed.blup_interval(group)
        rows.append(
            {
                "cell": group,
                "intercept": result.mixed.blup[group],
                "lower": lo,
                "upper": hi,
                "n": result.mixed.group_sizes[group],
            }
        )
    rows.sort(key=lambda r: r["intercept"])
    return rows


def fig9_intercept_map(result: StudyResult) -> dict:
    """Fig. 9: BLUP intercept predictions located on the map."""
    if result.mixed is None:
        return {}
    out = {}
    for group in result.mixed.groups:
        out[group] = {
            "centre": result.config.grid.cell_centre(group),
            "intercept": result.mixed.blup[group],
            "n": result.mixed.group_sizes[group],
        }
    return out


def fig10_weather_low_speed(
    result: StudyResult, lights_threshold: int = 9
) -> dict[str, dict[str, float | None]]:
    """Fig. 10: mean low-speed % per temperature class, lights < vs >= 9.

    The paper's experimentally chosen boundary of nine traffic lights
    splits the transitions; within every temperature class the >= 9 group
    should show the larger low-speed share.
    """
    weather = RoadWeatherModel(seed=result.config.fleet.seed)
    buckets: dict[str, dict[str, list[float]]] = {
        cls: {"few": [], "many": []} for cls in TEMPERATURE_CLASSES
    }
    for stats, i in zip(result.route_stats, result.kept_transitions):
        transition = result.extraction.transitions[i]
        cls = weather.temperature_class(transition.segment.start_time_s)
        group = "many" if stats.n_traffic_lights >= lights_threshold else "few"
        buckets[cls][group].append(stats.low_speed_pct)
    out: dict[str, dict[str, float | None]] = {}
    for cls, groups in buckets.items():
        out[cls] = {
            f"lights<{lights_threshold}": mean(groups["few"]) if groups["few"] else None,
            f"lights>={lights_threshold}": mean(groups["many"]) if groups["many"] else None,
        }
    return out
