"""Pipeline fidelity against simulator ground truth.

The reproduction's unique advantage over the paper: the simulator knows
exactly which customer runs happened and which gates each crossed, so the
pipeline's recall and precision are measurable end to end:

* *segmentation fidelity* — how many true customer runs the Table 2 rules
  recover, and how accurately their time boundaries land;
* *transition fidelity* — precision/recall of the thick-geometry OD
  extraction against the runs that truly crossed a studied gate pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cleaning.segmentation import TripSegment
from repro.experiments.study import StudyResult
from repro.od.transitions import STUDIED_PAIRS
from repro.traces.simulator import CustomerRun


@dataclass(frozen=True)
class SegmentationFidelity:
    """How well segmentation recovered the true customer runs."""

    n_runs: int
    n_segments: int
    n_recovered: int              # runs covered >= 60 % by one segment
    boundary_mae_s: float         # mean |start/end error| of recovered runs

    @property
    def recall(self) -> float:
        return self.n_recovered / self.n_runs if self.n_runs else 0.0


def segmentation_fidelity(
    segments: list[TripSegment], runs: list[CustomerRun]
) -> SegmentationFidelity:
    """Score segmentation output against ground-truth runs.

    A run counts as recovered when a same-car segment overlaps at least
    60 % of its duration; boundary error averages the |start| and |end|
    offsets of the best-overlapping segment.
    """
    by_car: dict[int, list[TripSegment]] = {}
    for seg in segments:
        by_car.setdefault(seg.car_id, []).append(seg)
    recovered = 0
    boundary_errors: list[float] = []
    for run in runs:
        duration = run.end_time_s - run.start_time_s
        if duration <= 0:
            continue
        best: TripSegment | None = None
        best_overlap = 0.0
        for seg in by_car.get(run.car_id, ()):
            lo = max(run.start_time_s, seg.start_time_s)
            hi = min(run.end_time_s, seg.end_time_s)
            if hi - lo > best_overlap:
                best_overlap = hi - lo
                best = seg
        if best is not None and best_overlap / duration >= 0.6:
            recovered += 1
            boundary_errors.append(abs(best.start_time_s - run.start_time_s))
            boundary_errors.append(abs(best.end_time_s - run.end_time_s))
    mae = sum(boundary_errors) / len(boundary_errors) if boundary_errors else 0.0
    return SegmentationFidelity(
        n_runs=len(runs),
        n_segments=len(segments),
        n_recovered=recovered,
        boundary_mae_s=mae,
    )


@dataclass(frozen=True)
class TransitionFidelity:
    """Precision/recall of OD transition extraction."""

    n_true: int                  # ground-truth studied-pair runs
    n_detected: int              # transitions the extractor reported
    n_matched: int               # detected transitions paired with a true run

    @property
    def precision(self) -> float:
        return self.n_matched / self.n_detected if self.n_detected else 1.0

    @property
    def recall(self) -> float:
        return self.n_matched / self.n_true if self.n_true else 1.0


def transition_fidelity(result: StudyResult) -> TransitionFidelity:
    """Score the extractor's transitions against ground-truth crossings.

    Ground truth: customer runs whose ordered gate crossings form a
    studied pair.  A detected transition matches a true run when it is the
    same car, the same direction, and their time windows overlap.
    """
    true_runs = [
        run for run in result.runs
        if run.gates_crossed in STUDIED_PAIRS
    ]
    detected = result.extraction.transitions
    matched = 0
    used: set[int] = set()
    for transition in detected:
        direction = (transition.origin, transition.destination)
        t0 = transition.segment.start_time_s
        t1 = transition.segment.end_time_s
        for i, run in enumerate(true_runs):
            if i in used or run.car_id != transition.segment.car_id:
                continue
            if run.gates_crossed != direction:
                continue
            if min(t1, run.end_time_s) > max(t0, run.start_time_s):
                matched += 1
                used.add(i)
                break
    return TransitionFidelity(
        n_true=len(true_runs),
        n_detected=len(detected),
        n_matched=matched,
    )
