"""GeoJSON export of pipeline artefacts.

Everything the paper visualises in QGIS can be exported as standard
GeoJSON FeatureCollections (WGS84, RFC 7946): the road network, gates,
raw and matched trips, hotspots and per-cell values — ready for any GIS
or web map.  Pure-dict output; serialise with ``json.dumps``.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.hotspots import Hotspot
from repro.experiments.study import StudyResult
from repro.geo.geometry import LineString
from repro.geo.projection import LocalProjector
from repro.matching.types import MatchedRoute
from repro.roadnet.graph import RoadGraph
from repro.traces.model import Trip


def feature(geometry: dict, properties: dict | None = None) -> dict:
    """A GeoJSON Feature."""
    return {
        "type": "Feature",
        "geometry": geometry,
        "properties": properties or {},
    }


def collection(features: list[dict]) -> dict:
    """A GeoJSON FeatureCollection."""
    return {"type": "FeatureCollection", "features": features}


def _line_coords(line: LineString, projector: LocalProjector) -> list[list[float]]:
    out = []
    for x, y in line:
        lat, lon = projector.to_latlon(x, y)
        out.append([round(lon, 6), round(lat, 6)])
    return out


def point_geometry(lat: float, lon: float) -> dict:
    return {"type": "Point", "coordinates": [round(lon, 6), round(lat, 6)]}


def road_network_geojson(graph: RoadGraph, projector: LocalProjector) -> dict:
    """The road graph as LineString features with edge attributes."""
    features = []
    for edge in graph.edges():
        features.append(
            feature(
                {
                    "type": "LineString",
                    "coordinates": _line_coords(edge.geometry, projector),
                },
                {
                    "edge_id": edge.edge_id,
                    "length_m": round(edge.length, 1),
                    "speed_limit_kmh": round(edge.speed_limit_kmh, 1),
                    "oneway": edge.forward_allowed != edge.backward_allowed,
                    "elements": list(edge.element_ids),
                },
            )
        )
    return collection(features)


def trip_geojson(trip: Trip) -> dict:
    """A raw trip as a LineString plus per-point timestamps."""
    coords = [[round(p.lon, 6), round(p.lat, 6)] for p in trip.points]
    return feature(
        {"type": "LineString", "coordinates": coords},
        {
            "trip_id": trip.trip_id,
            "car_id": trip.car_id,
            "start_time_s": trip.start_time_s,
            "total_distance_m": round(trip.total_distance_m, 1),
            "point_count": len(trip),
        },
    )


def matched_route_geojson(
    route: MatchedRoute, graph: RoadGraph, projector: LocalProjector,
    simplify_m: float | None = 2.0,
) -> dict:
    """A matched route's driven geometry as a LineString feature."""
    parts = []
    for edge_id, from_node in route.edge_sequence:
        parts.append(graph.edge(edge_id).geometry_from(from_node))
    if not parts:
        raise ValueError("route has no edge sequence")
    geometry = LineString.concat(parts)
    if simplify_m is not None:
        geometry = geometry.simplify(simplify_m)
    return feature(
        {"type": "LineString", "coordinates": _line_coords(geometry, projector)},
        {
            "segment_id": route.segment_id,
            "car_id": route.car_id,
            "length_m": round(route.length_m(graph), 1),
            "n_points": len(route.matched),
            "gaps_filled": route.gaps_filled,
        },
    )


def hotspots_geojson(hotspots: list[Hotspot], projector: LocalProjector) -> dict:
    """Detected hotspots as Point features sized by event count."""
    features = []
    for rank, h in enumerate(hotspots, start=1):
        lat, lon = projector.to_latlon(*h.centroid)
        features.append(
            feature(
                point_geometry(lat, lon),
                {
                    "rank": rank,
                    "events": h.n_events,
                    "cars": h.n_cars,
                    "dwell_hours": round(h.total_dwell_s / 3600.0, 2),
                },
            )
        )
    return collection(features)


def study_geojson(result: StudyResult, max_routes: int = 50) -> dict[str, Any]:
    """A bundle of FeatureCollections for one study run.

    Returns ``{"roads": ..., "gates": ..., "routes": ..., "cells": ...}``.
    """
    projector = result.city.projector
    gates = collection([
        feature(
            {"type": "LineString", "coordinates": _line_coords(road, projector)},
            {"gate": name},
        )
        for name, road in result.city.gate_roads.items()
    ])
    routes = collection([
        matched_route_geojson(route, result.city.graph, projector)
        for __, route in result.kept()[:max_routes]
    ])
    cell_features = []
    if result.mixed is not None:
        half = result.config.grid.cell_size_m / 2.0
        for key in result.mixed.groups:
            cx, cy = result.config.grid.cell_centre(key)
            ring = [
                (cx - half, cy - half), (cx + half, cy - half),
                (cx + half, cy + half), (cx - half, cy + half),
                (cx - half, cy - half),
            ]
            coords = []
            for x, y in ring:
                lat, lon = projector.to_latlon(x, y)
                coords.append([round(lon, 6), round(lat, 6)])
            cell_features.append(
                feature(
                    {"type": "Polygon", "coordinates": [coords]},
                    {
                        "cell": list(key),
                        "intercept_kmh": round(result.mixed.blup[key], 2),
                        "n_points": result.mixed.group_sizes[key],
                    },
                )
            )
    return {
        "roads": road_network_geojson(result.city.graph, projector),
        "gates": gates,
        "routes": routes,
        "cells": collection(cell_features),
    }
