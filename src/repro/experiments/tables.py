"""Table generators — one per table of the paper."""

from __future__ import annotations

from repro.cleaning import CleanResult
from repro.experiments.study import StudyResult
from repro.features.grid import stratify_cells_by_features
from repro.roadnet import SyntheticCity
from repro.stats import six_number_summary
from repro.stats.descriptive import SixNumber, mean, variance

#: Table 4 metrics in the paper's row order, mapped to RouteStats fields.
TABLE4_METRICS = (
    ("route_time_h", "Route time (h)"),
    ("route_distance_km", "Route dist. (km)"),
    ("low_speed_pct", "Low speed %"),
    ("normal_speed_pct", "Norm. speed %"),
    ("n_traffic_lights", "Traffic lights"),
    ("n_junctions", "Junction"),
    ("n_pedestrian_crossings", "Pedestr. crossings"),
    ("fuel_ml", "Fuel cons. (ml)"),
)

#: The paper's direction order in Table 4.
DIRECTIONS = ("T-S", "S-T", "T-L", "L-T")


def table1_junction_pairs(city: SyntheticCity, limit: int | None = None) -> list[dict]:
    """Table 1: junction pairs with their merged traffic elements.

    Junction coordinates are reported in EPSG:4326 as in the paper.
    """
    rows = []
    for pair in city.junction_pairs[: limit if limit is not None else None]:
        lat1, lon1 = city.projector.to_latlon(*pair.junction1)
        lat2, lon2 = city.projector.to_latlon(*pair.junction2)
        rows.append(
            {
                "junction1": f"POINT({lon1:.4f}, {lat1:.4f})",
                "elements": list(pair.element_ids),
                "junction2": f"POINT({lon2:.4f}, {lat2:.4f})",
            }
        )
    return rows


#: Human-readable statements of the five Table 2 rules.
TABLE2_RULES = {
    1: "distance unchanged within three minutes -> stop",
    2: "distance change < 3 km in more than seven minutes -> stop",
    3: "movement speed < 0.002 m/s -> stop",
    4: "< 3 km in more than 15 minutes at speed > 0.002 m/s -> stop",
    5: "remaining trips > 40 km re-split with rule 1 at 1.5 min",
}


def table2_rule_hits(clean: CleanResult) -> list[dict]:
    """Table 2 (behavioural): each rule with how often it fired."""
    hits = clean.report.segmentation.rule_hits
    return [
        {"rule": rule, "description": TABLE2_RULES[rule], "hits": hits.get(rule, 0)}
        for rule in sorted(TABLE2_RULES)
    ]


def table3_funnel(result: StudyResult) -> list[dict]:
    """Table 3: the per-car map-matching funnel."""
    return [
        {
            "car": row.car_id,
            "trip_segments_total": row.total_segments,
            "filtered_and_cleaned": row.filtered_cleaned,
            "transitions_total": row.transitions_total,
            "within_city_centre": row.within_centre,
            "post_filtered": row.post_filtered,
        }
        for row in result.funnel
    ]


def table4_route_summaries(result: StudyResult) -> dict[str, dict[str, SixNumber]]:
    """Table 4: six-number summaries per metric per OD direction.

    Returns ``{metric: {direction: SixNumber}}``; directions with no
    surviving transitions are omitted from the inner dict.
    """
    by_direction = result.stats_by_direction()
    out: dict[str, dict[str, SixNumber]] = {}
    for metric, __ in TABLE4_METRICS:
        per_dir: dict[str, SixNumber] = {}
        for direction in DIRECTIONS:
            stats = by_direction.get(direction, [])
            values = [float(getattr(s, metric)) for s in stats]
            if values:
                per_dir[direction] = six_number_summary(values)
        out[metric] = per_dir
    return out


def table5_cell_speed_strata(result: StudyResult) -> dict[str, dict[str, float]]:
    """Table 5: cell average speeds stratified by lights/bus stops.

    Returns ``{stratum: {min, max, mean, var, n_cells}}`` over per-cell
    average point speeds.
    """
    groups = stratify_cells_by_features(result.grid.cells(), result.cell_features)
    out: dict[str, dict[str, float]] = {}
    for name, values in groups.items():
        if not values:
            out[name] = {"min": float("nan"), "max": float("nan"),
                         "mean": float("nan"), "var": float("nan"), "n_cells": 0}
            continue
        out[name] = {
            "min": min(values),
            "max": max(values),
            "mean": mean(values),
            "var": variance(values),
            "n_cells": len(values),
        }
    return out
