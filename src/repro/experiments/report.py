"""One-shot Markdown study report.

Bundles every table, figure summary and extension analysis of a study run
into a single self-contained Markdown document — the written artefact a
city analyst would hand over.
"""

from __future__ import annotations

from repro.analysis import (
    DrivingCoach,
    build_direction_profiles,
    build_od_matrix,
    detect_hotspots,
    direction_detours,
    extract_dwells,
    flow_table,
    gate_distance_matrix,
)
from repro.experiments.figures import (
    fig10_weather_low_speed,
    seasonal_speed_deltas,
)
from repro.experiments.rendering import (
    format_table,
    render_funnel,
    render_table4,
    render_table5,
)
from repro.experiments.study import StudyResult
from repro.parallel import study_gates
from repro.experiments.tables import (
    table2_rule_hits,
    table4_route_summaries,
    table5_cell_speed_strata,
)
from repro.stats.qq import qq_correlation
from repro.traces.simulator import Region


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def study_report(result: StudyResult) -> str:
    """Render the full Markdown report for one study run."""
    fleet = result.fleet
    clean = result.clean.report
    parts: list[str] = []
    parts.append("# Taxi-trace study report\n")
    parts.append(
        f"Fleet: {len(fleet.car_ids())} taxis, {len(fleet)} raw trips, "
        f"{fleet.point_count} route points over "
        f"{result.config.fleet.n_days} days "
        f"(seed {result.config.fleet.seed}).\n"
    )

    parts.append("## Data preparation\n")
    parts.append(
        f"- ordering repaired on {clean.reordered_trips} trips "
        f"({clean.reordering_saved_m / 1000:.1f} km of zigzag removed)\n"
        f"- {clean.duplicates_removed} duplicates and "
        f"{clean.outliers_removed} coordinate glitches dropped\n"
        f"- {clean.segments_out} trip segments kept "
        f"({clean.segments_dropped_short} too short, "
        f"{clean.segments_dropped_long} too long)\n"
    )
    rules = format_table(
        ["Rule", "Description", "Firings"],
        [[r["rule"], r["description"], r["hits"]]
         for r in table2_rule_hits(result.clean)],
    )
    parts.append(_section("Segmentation rules (Table 2)", rules))
    parts.append(_section("Map-matching funnel (Table 3)", render_funnel(result)))
    parts.append(_section(
        "Route statistics per direction (Table 4)",
        render_table4(table4_route_summaries(result)),
    ))
    parts.append(_section(
        "Lights/bus stops vs cell speed (Table 5)",
        render_table5(table5_cell_speed_strata(result)),
    ))

    deltas = seasonal_speed_deltas(result)
    if deltas:
        seasonal = format_table(
            ["Season", "Delta vs annual mean (km/h)"],
            [[s, round(d, 2)] for s, d in deltas.items()],
        )
        parts.append(_section("Seasonal speed deltas (Fig. 5)", seasonal))

    if result.mixed is not None:
        blups = list(result.mixed.blup.values())
        parts.append("## Mixed model (Figs. 7-9)\n")
        parts.append(
            f"- residual variance {result.mixed.sigma2:.1f}, "
            f"cell variance {result.mixed.sigma2_u:.1f}\n"
            f"- cell intercepts in [{min(blups):.1f}, {max(blups):.1f}] km/h "
            f"over {len(blups)} cells\n"
            f"- QQ correlation {qq_correlation(blups):.3f} "
            "(Gaussian regularisation justified)\n"
            "- geography effect LRT p-value "
            f"{result.mixed.lrt_pvalue:.2g}\n"
        )

    weather = fig10_weather_low_speed(result, lights_threshold=5)
    weather_rows = [
        [cls, *(("-" if v is None else round(v, 1)) for v in groups.values())]
        for cls, groups in weather.items()
    ]
    parts.append(_section(
        "Low-speed share by temperature class (Fig. 10)",
        format_table(["Temp class", "few lights", "many lights"], weather_rows),
    ))

    # Extensions.
    projector = result.city.projector
    dwells = extract_dwells(fleet, lambda p: projector.to_xy(p.lat, p.lon))
    hotspots = detect_hotspots(dwells, eps=180.0, min_pts=6)
    if hotspots:
        hot_rows = [
            [i + 1, round(h.centroid[0]), round(h.centroid[1]), h.n_events, h.n_cars]
            for i, h in enumerate(hotspots[:5])
        ]
        parts.append(_section(
            "Pick-up/drop-off hotspots",
            format_table(["Rank", "x (m)", "y (m)", "Events", "Cars"], hot_rows),
        ))

    matrix = build_od_matrix(result.runs)
    od = format_table(
        ["origin \\ dest"] + [r.value for r in Region], flow_table(matrix)
    )
    parts.append(_section(
        f"OD flows (peak hour {matrix.peak_hour()}:00, "
        f"core share {matrix.core_share():.0%})", od,
    ))

    profiles = build_direction_profiles(result.kept())
    if profiles:
        # One batched gate-to-gate matrix answers every direction's
        # shortest network distance (see analysis.odflows).
        gate_matrix = gate_distance_matrix(
            result.city.graph, study_gates(result.city)
        )
        detours = direction_detours(result.city.graph, profiles, gate_matrix)
        freq_rows = []
        for d, p in sorted(profiles.items()):
            detour = detours.get(d)
            freq_rows.append([
                d, p.n_trips, p.n_variants, round(p.diversity, 2),
                "-" if detour is None else round(detour.shortest_m),
                "-" if detour is None else round(detour.typical_detour, 2),
            ])
        parts.append(_section(
            "Route variants per direction",
            format_table(
                ["Direction", "Trips", "Variants", "Eff. routes",
                 "Shortest m", "Detour"],
                freq_rows,
            ),
        ))

    if result.route_stats:
        coach = DrivingCoach(result.route_stats)
        coach_rows = [
            [r.car_id, round(r.fuel_per_km_ml, 1), round(r.low_speed_pct, 1)]
            for r in coach.fleet_reports()
        ]
        parts.append(_section(
            "Driving coach (fleet ranking)",
            format_table(["Car", "Fuel ml/km", "Low speed %"], coach_rows),
        ))

    return "\n".join(parts)
