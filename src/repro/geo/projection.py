"""Map projections.

The pipeline works on a metric plane.  Two projectors are provided:

* :class:`LocalProjector` — a local tangent-plane (equirectangular)
  projection anchored at a reference point; exact enough at city scale and
  very fast.  This is what the pipeline uses internally.
* :class:`TransverseMercator` — a full ellipsoidal transverse-Mercator
  projection (the family ETRS-TM35FIN, the CRS Digiroad ships in, belongs
  to), kept for fidelity to the paper's source data and used to cross-check
  the local projector in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.distance import EARTH_RADIUS_M

# GRS80 ellipsoid (used by ETRS89 / ETRS-TM35FIN).
_GRS80_A = 6_378_137.0
_GRS80_F = 1.0 / 298.257222101


@dataclass(frozen=True)
class LocalProjector:
    """Project WGS84 coordinates onto a local metric plane.

    ``x`` grows east, ``y`` grows north, both in metres from the reference
    point.  Distortion is below 0.01 % within ~20 km of the reference, far
    tighter than GPS noise.
    """

    ref_lat: float
    ref_lon: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_cos_ref", math.cos(math.radians(self.ref_lat))
        )

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        """WGS84 degrees -> local metric ``(x, y)``."""
        x = math.radians(lon - self.ref_lon) * self._cos_ref * EARTH_RADIUS_M
        y = math.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def to_latlon(self, x: float, y: float) -> tuple[float, float]:
        """Local metric ``(x, y)`` -> WGS84 degrees ``(lat, lon)``."""
        lat = self.ref_lat + math.degrees(y / EARTH_RADIUS_M)
        lon = self.ref_lon + math.degrees(x / (EARTH_RADIUS_M * self._cos_ref))
        return lat, lon


class TransverseMercator:
    """Ellipsoidal transverse-Mercator projection (Karney-style series).

    Implements the forward and inverse mappings with 6th-order Krueger
    series on the GRS80 ellipsoid.  ``TransverseMercator.tm35fin()`` yields
    the ETRS-TM35FIN parameterisation (central meridian 27 E, scale 0.9996,
    false easting 500 000 m) used by Digiroad.
    """

    def __init__(
        self,
        central_meridian_deg: float,
        scale: float = 0.9996,
        false_easting: float = 500_000.0,
        false_northing: float = 0.0,
    ) -> None:
        self.lon0 = math.radians(central_meridian_deg)
        self.k0 = scale
        self.fe = false_easting
        self.fn = false_northing

        f = _GRS80_F
        n = f / (2.0 - f)
        self._n = n
        # Rectifying radius.
        self._a_hat = (_GRS80_A / (1.0 + n)) * (
            1.0 + n**2 / 4.0 + n**4 / 64.0 + n**6 / 256.0
        )
        # Forward (alpha) and inverse (beta) series coefficients, order 6.
        self._alpha = (
            n / 2.0 - 2.0 * n**2 / 3.0 + 5.0 * n**3 / 16.0 + 41.0 * n**4 / 180.0
            - 127.0 * n**5 / 288.0 + 7891.0 * n**6 / 37800.0,
            13.0 * n**2 / 48.0 - 3.0 * n**3 / 5.0 + 557.0 * n**4 / 1440.0
            + 281.0 * n**5 / 630.0 - 1983433.0 * n**6 / 1935360.0,
            61.0 * n**3 / 240.0 - 103.0 * n**4 / 140.0 + 15061.0 * n**5 / 26880.0
            + 167603.0 * n**6 / 181440.0,
            49561.0 * n**4 / 161280.0 - 179.0 * n**5 / 168.0
            + 6601661.0 * n**6 / 7257600.0,
            34729.0 * n**5 / 80640.0 - 3418889.0 * n**6 / 1995840.0,
            212378941.0 * n**6 / 319334400.0,
        )
        self._beta = (
            n / 2.0 - 2.0 * n**2 / 3.0 + 37.0 * n**3 / 96.0 - n**4 / 360.0
            - 81.0 * n**5 / 512.0 + 96199.0 * n**6 / 604800.0,
            n**2 / 48.0 + n**3 / 15.0 - 437.0 * n**4 / 1440.0 + 46.0 * n**5 / 105.0
            - 1118711.0 * n**6 / 3870720.0,
            17.0 * n**3 / 480.0 - 37.0 * n**4 / 840.0 - 209.0 * n**5 / 4480.0
            + 5569.0 * n**6 / 90720.0,
            4397.0 * n**4 / 161280.0 - 11.0 * n**5 / 504.0
            - 830251.0 * n**6 / 7257600.0,
            4583.0 * n**5 / 161280.0 - 108847.0 * n**6 / 3991680.0,
            20648693.0 * n**6 / 638668800.0,
        )
        e2 = f * (2.0 - f)
        self._e = math.sqrt(e2)

    @classmethod
    def tm35fin(cls) -> "TransverseMercator":
        """The ETRS-TM35FIN parameterisation used by Digiroad."""
        return cls(central_meridian_deg=27.0)

    def _conformal_lat(self, phi: float) -> float:
        e = self._e
        return math.atan(
            math.sinh(
                math.asinh(math.tan(phi)) - e * math.atanh(e * math.sin(phi))
            )
        )

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        """WGS84/ETRS89 degrees -> projected ``(easting, northing)`` metres."""
        phi = math.radians(lat)
        lam = math.radians(lon) - self.lon0
        chi = self._conformal_lat(phi)
        tan_chi = math.tan(chi)
        xi_p = math.atan2(tan_chi, math.cos(lam))
        eta_p = math.asinh(math.sin(lam) / math.hypot(tan_chi, math.cos(lam)))
        xi = xi_p
        eta = eta_p
        for j, a in enumerate(self._alpha, start=1):
            xi += a * math.sin(2.0 * j * xi_p) * math.cosh(2.0 * j * eta_p)
            eta += a * math.cos(2.0 * j * xi_p) * math.sinh(2.0 * j * eta_p)
        easting = self.fe + self.k0 * self._a_hat * eta
        northing = self.fn + self.k0 * self._a_hat * xi
        return easting, northing

    def to_latlon(self, easting: float, northing: float) -> tuple[float, float]:
        """Projected metres -> WGS84/ETRS89 degrees ``(lat, lon)``."""
        xi = (northing - self.fn) / (self.k0 * self._a_hat)
        eta = (easting - self.fe) / (self.k0 * self._a_hat)
        xi_p = xi
        eta_p = eta
        for j, b in enumerate(self._beta, start=1):
            xi_p -= b * math.sin(2.0 * j * xi) * math.cosh(2.0 * j * eta)
            eta_p -= b * math.cos(2.0 * j * xi) * math.sinh(2.0 * j * eta)
        chi = math.asin(math.sin(xi_p) / math.cosh(eta_p))
        lam = math.atan2(math.sinh(eta_p), math.cos(xi_p))
        # Invert the conformal latitude by fixed-point iteration.
        e = self._e
        phi = chi
        for _ in range(8):
            phi = math.atan(
                math.sinh(
                    math.asinh(math.tan(chi)) + e * math.atanh(e * math.sin(phi))
                )
            )
        return math.degrees(phi), math.degrees(lam + self.lon0)
