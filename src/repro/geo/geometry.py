"""Planar polyline geometry.

Everything here works in a local metric plane (see
:class:`repro.geo.projection.LocalProjector`).  Points are ``(x, y)`` float
pairs; polylines are :class:`LineString` objects backed by a NumPy array.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

Point = tuple[float, float]


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point ``p`` to the segment ``a``-``b``."""
    proj, __ = project_point_to_segment(p, a, b)
    return math.hypot(p[0] - proj[0], p[1] - proj[1])


def project_point_to_segment(p: Point, a: Point, b: Point) -> tuple[Point, float]:
    """Project ``p`` onto segment ``a``-``b``.

    Returns ``(closest_point, t)`` where ``t`` in ``[0, 1]`` is the position
    of the closest point along the segment (0 at ``a``, 1 at ``b``).
    """
    ax, ay = a
    bx, by = b
    dx = bx - ax
    dy = by - ay
    denom = dx * dx + dy * dy
    if denom <= 0.0:
        return (ax, ay), 0.0
    t = ((p[0] - ax) * dx + (p[1] - ay) * dy) / denom
    t = min(1.0, max(0.0, t))
    return (ax + t * dx, ay + t * dy), t


def segment_intersection(
    a1: Point, a2: Point, b1: Point, b2: Point
) -> Point | None:
    """Intersection point of segments ``a1-a2`` and ``b1-b2``, or None.

    Collinear overlaps return None: for gate-crossing detection a grazing
    pass along the gate line is not a crossing.
    """
    r = (a2[0] - a1[0], a2[1] - a1[1])
    s = (b2[0] - b1[0], b2[1] - b1[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if denom == 0.0:
        return None
    qp = (b1[0] - a1[0], b1[1] - a1[1])
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if 0.0 <= t <= 1.0 and 0.0 <= u <= 1.0:
        return (a1[0] + t * r[0], a1[1] + t * r[1])
    return None


def angle_between_deg(v1: Point, v2: Point) -> float:
    """Unsigned angle between two direction vectors, in [0, 180] degrees."""
    n1 = math.hypot(*v1)
    n2 = math.hypot(*v2)
    if n1 == 0.0 or n2 == 0.0:
        return 0.0
    cosang = (v1[0] * v2[0] + v1[1] * v2[1]) / (n1 * n2)
    cosang = min(1.0, max(-1.0, cosang))
    return math.degrees(math.acos(cosang))


def crossing_angle_deg(v1: Point, v2: Point) -> float:
    """Angle between two *lines* (direction-insensitive), in [0, 90] degrees."""
    ang = angle_between_deg(v1, v2)
    return ang if ang <= 90.0 else 180.0 - ang


class LineString:
    """An immutable planar polyline with cached cumulative lengths.

    Supports the operations the pipeline needs: total length, interpolation
    by arc length, nearest-point projection (returning both the point and
    its arc-length position), crossing tests against a segment, and heading
    at a given position.
    """

    __slots__ = ("_coords", "_cumlen")

    def __init__(self, coords: Iterable[Point] | np.ndarray) -> None:
        arr = np.asarray(list(coords) if not isinstance(coords, np.ndarray) else coords, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 2:
            raise ValueError("LineString needs at least two (x, y) points")
        self._coords = arr
        seg = np.hypot(np.diff(arr[:, 0]), np.diff(arr[:, 1]))
        self._cumlen = np.concatenate(([0.0], np.cumsum(seg)))

    @property
    def coords(self) -> np.ndarray:
        """The ``(n, 2)`` vertex array (do not mutate)."""
        return self._coords

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return float(self._cumlen[-1])

    def __len__(self) -> int:
        return int(self._coords.shape[0])

    def __iter__(self):
        return iter(map(tuple, self._coords))

    def __repr__(self) -> str:
        return f"LineString({len(self)} pts, {self.length:.1f} m)"

    def start(self) -> Point:
        return tuple(self._coords[0])

    def end(self) -> Point:
        return tuple(self._coords[-1])

    def reversed(self) -> "LineString":
        """The same polyline traversed in the opposite direction."""
        return LineString(self._coords[::-1].copy())

    def interpolate(self, arc: float) -> Point:
        """Point at arc length ``arc`` (clamped to ``[0, length]``)."""
        arc = min(self.length, max(0.0, arc))
        i = int(np.searchsorted(self._cumlen, arc, side="right") - 1)
        i = min(i, len(self) - 2)
        seg_len = self._cumlen[i + 1] - self._cumlen[i]
        t = 0.0 if seg_len == 0.0 else (arc - self._cumlen[i]) / seg_len
        a = self._coords[i]
        b = self._coords[i + 1]
        return (float(a[0] + t * (b[0] - a[0])), float(a[1] + t * (b[1] - a[1])))

    def heading_at(self, arc: float) -> Point:
        """Unit direction vector of the polyline at arc length ``arc``."""
        arc = min(self.length, max(0.0, arc))
        i = int(np.searchsorted(self._cumlen, arc, side="right") - 1)
        i = min(max(i, 0), len(self) - 2)
        dx = float(self._coords[i + 1, 0] - self._coords[i, 0])
        dy = float(self._coords[i + 1, 1] - self._coords[i, 1])
        n = math.hypot(dx, dy)
        if n == 0.0:
            return (0.0, 0.0)
        return (dx / n, dy / n)

    def project(self, p: Point) -> tuple[Point, float, float]:
        """Nearest point on the polyline to ``p``.

        Returns ``(closest_point, arc_length_at_closest, distance)``.
        Vectorised over segments with NumPy, so it is cheap even for long
        polylines.
        """
        xs = self._coords[:, 0]
        ys = self._coords[:, 1]
        ax = xs[:-1]
        ay = ys[:-1]
        dx = np.diff(xs)
        dy = np.diff(ys)
        denom = dx * dx + dy * dy
        denom[denom == 0.0] = 1.0
        t = ((p[0] - ax) * dx + (p[1] - ay) * dy) / denom
        np.clip(t, 0.0, 1.0, out=t)
        cx = ax + t * dx
        cy = ay + t * dy
        d2 = (p[0] - cx) ** 2 + (p[1] - cy) ** 2
        i = int(np.argmin(d2))
        seg_len = float(self._cumlen[i + 1] - self._cumlen[i])
        arc = float(self._cumlen[i]) + float(t[i]) * seg_len
        return (float(cx[i]), float(cy[i])), arc, float(math.sqrt(d2[i]))

    def distance_to(self, p: Point) -> float:
        """Distance from ``p`` to the polyline."""
        return self.project(p)[2]

    def crossings(self, a: Point, b: Point) -> list[tuple[Point, float]]:
        """Intersections of segment ``a``-``b`` with this polyline.

        Returns ``(intersection_point, polyline_arc_length)`` pairs ordered
        along the polyline.
        """
        out: list[tuple[Point, float]] = []
        coords = self._coords
        for i in range(len(self) - 1):
            p1 = (float(coords[i, 0]), float(coords[i, 1]))
            p2 = (float(coords[i + 1, 0]), float(coords[i + 1, 1]))
            hit = segment_intersection(p1, p2, a, b)
            if hit is None:
                continue
            seg_len = float(self._cumlen[i + 1] - self._cumlen[i])
            if seg_len > 0.0:
                frac = math.hypot(hit[0] - p1[0], hit[1] - p1[1]) / seg_len
            else:
                frac = 0.0
            out.append((hit, float(self._cumlen[i]) + frac * seg_len))
        return out

    def substring(self, arc_from: float, arc_to: float) -> "LineString":
        """Sub-polyline between two arc lengths (``arc_from < arc_to``)."""
        arc_from = min(self.length, max(0.0, arc_from))
        arc_to = min(self.length, max(0.0, arc_to))
        if arc_to <= arc_from:
            raise ValueError("substring needs arc_from < arc_to")
        pts: list[Point] = [self.interpolate(arc_from)]
        inner = (self._cumlen > arc_from) & (self._cumlen < arc_to)
        for idx in np.nonzero(inner)[0]:
            pts.append((float(self._coords[idx, 0]), float(self._coords[idx, 1])))
        pts.append(self.interpolate(arc_to))
        if len(pts) < 2:
            pts = [self.interpolate(arc_from), self.interpolate(arc_to)]
        return LineString(pts)

    def resample(self, spacing: float) -> "LineString":
        """Resample at roughly uniform ``spacing`` metres, keeping endpoints."""
        if spacing <= 0.0:
            raise ValueError("spacing must be positive")
        n = max(1, int(math.ceil(self.length / spacing)))
        arcs = np.linspace(0.0, self.length, n + 1)
        return LineString([self.interpolate(float(s)) for s in arcs])

    def simplify(self, tolerance: float) -> "LineString":
        """Douglas-Peucker simplification within ``tolerance`` metres.

        Keeps endpoints; every removed vertex lies within ``tolerance`` of
        the simplified polyline.  Useful when exporting dense matched
        geometry (SVG, GeoJSON) without visual loss.
        """
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        coords = [tuple(map(float, c)) for c in self._coords]
        keep = [False] * len(coords)
        keep[0] = keep[-1] = True
        stack = [(0, len(coords) - 1)]
        while stack:
            lo, hi = stack.pop()
            if hi - lo < 2:
                continue
            a = coords[lo]
            b = coords[hi]
            worst_d = -1.0
            worst_i = -1
            for i in range(lo + 1, hi):
                d = point_segment_distance(coords[i], a, b)
                if d > worst_d:
                    worst_d = d
                    worst_i = i
            if worst_d > tolerance:
                keep[worst_i] = True
                stack.append((lo, worst_i))
                stack.append((worst_i, hi))
        return LineString([c for c, k in zip(coords, keep) if k])

    @classmethod
    def concat(cls, parts: Sequence["LineString"]) -> "LineString":
        """Concatenate polylines, dropping duplicated joint vertices."""
        if not parts:
            raise ValueError("concat needs at least one part")
        pts: list[Point] = list(map(tuple, parts[0].coords))
        for part in parts[1:]:
            chunk = list(map(tuple, part.coords))
            if pts and chunk and _close(pts[-1], chunk[0]):
                chunk = chunk[1:]
            pts.extend(chunk)
        return cls(pts)


def _close(a: Point, b: Point, tol: float = 1e-6) -> bool:
    return abs(a[0] - b[0]) <= tol and abs(a[1] - b[1]) <= tol
