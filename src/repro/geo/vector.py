"""Vectorized columnar geometry kernels.

NumPy batch counterparts of the scalar kernels in
:mod:`repro.geo.distance` and :mod:`repro.geo.geometry`.  The scalar
functions stay the reference implementations; every kernel here applies
*the same formula, in the same operation order*, over whole arrays, so
the batch results agree with the scalar path to the last few ulps (the
property the vectorized-pipeline equivalence tests pin down).

Used by the ``vectorized=True`` fast paths of the cleaning, gating and
candidate-generation stages — per-gap trip geometry becomes a handful of
array operations instead of one Python-level trig call per route-point
pair.
"""

from __future__ import annotations

import numpy as np

from repro.geo.distance import EARTH_RADIUS_M


def _as_f64(*arrays: object) -> tuple[np.ndarray, ...]:
    return tuple(np.asarray(a, dtype=np.float64) for a in arrays)


def haversine_m_vec(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Batch :func:`repro.geo.distance.haversine_m` (broadcasting).

    Includes the antipodal clamp of the scalar version: rounding can push
    the haversine term a hair above 1, which would make ``arcsin`` NaN.
    """
    lat1, lon1, lat2, lon2 = _as_f64(lat1, lon1, lat2, lon2)
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlam = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def equirectangular_m_vec(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Batch :func:`repro.geo.distance.equirectangular_m` (broadcasting)."""
    lat1, lon1, lat2, lon2 = _as_f64(lat1, lon1, lat2, lon2)
    mean_phi = np.radians((lat1 + lat2) / 2.0)
    x = np.radians(lon2 - lon1) * np.cos(mean_phi)
    y = np.radians(lat2 - lat1)
    return EARTH_RADIUS_M * np.hypot(x, y)


def bearing_deg_vec(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Batch :func:`repro.geo.distance.bearing_deg`, degrees in [0, 360)."""
    lat1, lon1, lat2, lon2 = _as_f64(lat1, lon1, lat2, lon2)
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    dlam = np.radians(lon2 - lon1)
    y = np.sin(dlam) * np.cos(phi2)
    x = np.cos(phi1) * np.sin(phi2) - np.sin(phi1) * np.cos(phi2) * np.cos(dlam)
    return np.degrees(np.arctan2(y, x)) % 360.0


def gap_metrics(
    lat: np.ndarray, lon: np.ndarray, time_s: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-gap great-circle distance and time delta along a point column.

    For ``n`` points returns ``(dist_m, dt_s)`` arrays of length ``n - 1``
    where entry ``i`` describes the gap between points ``i`` and ``i + 1``
    — the quantities every Table 2 stop rule is a predicate over.
    """
    lat, lon, time_s = _as_f64(lat, lon, time_s)
    if lat.shape[0] < 2:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()
    dist = haversine_m_vec(lat[:-1], lon[:-1], lat[1:], lon[1:])
    return dist, time_s[1:] - time_s[:-1]


def project_onto_segments(
    px, py, ax, ay, bx, by
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch point-to-segment projection.

    Row ``i`` projects point ``(px[i], py[i])`` onto segment
    ``(ax[i], ay[i]) - (bx[i], by[i])``.  Returns ``(cx, cy, t)`` — the
    closest point and its clamped parameter in ``[0, 1]`` — with the exact
    degenerate-segment convention of :meth:`LineString.project` (zero
    length => ``t = 0`` at the segment start).
    """
    px, py, ax, ay, bx, by = _as_f64(px, py, ax, ay, bx, by)
    dx = bx - ax
    dy = by - ay
    denom = dx * dx + dy * dy
    denom = np.where(denom == 0.0, 1.0, denom)
    t = np.clip(((px - ax) * dx + (py - ay) * dy) / denom, 0.0, 1.0)
    return ax + t * dx, ay + t * dy, t
