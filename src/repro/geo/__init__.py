"""Geodesy and planar geometry substrate.

The paper stores road geometry in EPSG:4326 (WGS84 lon/lat) and relies on
PostGIS for metric operations.  This package provides the equivalent pure
Python machinery:

* great-circle and fast equirectangular distances on the ellipsoid/sphere
  (:mod:`repro.geo.distance`),
* a local transverse-Mercator projection so city-scale work happens on a
  metric plane (:mod:`repro.geo.projection`),
* polyline geometry: lengths, interpolation, nearest-point projection and
  crossing angles (:mod:`repro.geo.geometry`),
* polygons and the "thick geometry" capsule used for origin/destination
  gates (:mod:`repro.geo.polygon`),
* a uniform grid spatial index for points and segments
  (:mod:`repro.geo.index`),
* batched NumPy counterparts of the scalar kernels for the vectorized
  fast paths (:mod:`repro.geo.vector`).
"""

from repro.geo.distance import (
    EARTH_RADIUS_M,
    bearing_deg,
    destination_point,
    equirectangular_m,
    haversine_m,
)
from repro.geo.geometry import (
    LineString,
    angle_between_deg,
    point_segment_distance,
    project_point_to_segment,
    segment_intersection,
)
from repro.geo.index import GridIndex
from repro.geo.polygon import Polygon, ThickLine
from repro.geo.projection import LocalProjector, TransverseMercator
from repro.geo.vector import (
    bearing_deg_vec,
    equirectangular_m_vec,
    gap_metrics,
    haversine_m_vec,
    project_onto_segments,
)

__all__ = [
    "EARTH_RADIUS_M",
    "GridIndex",
    "LineString",
    "LocalProjector",
    "Polygon",
    "ThickLine",
    "TransverseMercator",
    "angle_between_deg",
    "bearing_deg",
    "bearing_deg_vec",
    "destination_point",
    "equirectangular_m",
    "equirectangular_m_vec",
    "gap_metrics",
    "haversine_m",
    "haversine_m_vec",
    "point_segment_distance",
    "project_onto_segments",
    "project_point_to_segment",
    "segment_intersection",
]
