"""Polygons and "thick geometry".

The paper's origin/destination gates are road segments "artificially made
thicker to catch the routes significantly deviating from the original
roads" (Sec. IV.D).  :class:`ThickLine` models exactly that: a polyline with
a half-width, i.e. a capsule.  :class:`Polygon` provides the containment
test used for the "within city centre" filter.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.geo.geometry import LineString, Point, crossing_angle_deg


class Polygon:
    """A simple (non-self-intersecting) polygon with even-odd containment."""

    __slots__ = ("_xs", "_ys")

    def __init__(self, vertices: Iterable[Point]) -> None:
        pts = list(vertices)
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError("Polygon needs at least three distinct vertices")
        self._xs = [float(p[0]) for p in pts]
        self._ys = [float(p[1]) for p in pts]

    @classmethod
    def rectangle(cls, x_min: float, y_min: float, x_max: float, y_max: float) -> "Polygon":
        """Axis-aligned rectangle."""
        if x_max <= x_min or y_max <= y_min:
            raise ValueError("rectangle needs x_min < x_max and y_min < y_max")
        return cls([(x_min, y_min), (x_max, y_min), (x_max, y_max), (x_min, y_max)])

    def __len__(self) -> int:
        return len(self._xs)

    @property
    def vertices(self) -> list[Point]:
        return list(zip(self._xs, self._ys))

    def bounds(self) -> tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` bounding box."""
        return (min(self._xs), min(self._ys), max(self._xs), max(self._ys))

    def contains(self, p: Point) -> bool:
        """Even-odd ray-casting point-in-polygon test."""
        x, y = p
        inside = False
        xs = self._xs
        ys = self._ys
        j = len(xs) - 1
        for i in range(len(xs)):
            if (ys[i] > y) != (ys[j] > y):
                x_cross = xs[i] + (y - ys[i]) * (xs[j] - xs[i]) / (ys[j] - ys[i])
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def area(self) -> float:
        """Unsigned shoelace area."""
        total = 0.0
        j = len(self._xs) - 1
        for i in range(len(self._xs)):
            total += (self._xs[j] + self._xs[i]) * (self._ys[j] - self._ys[i])
            j = i
        return abs(total) / 2.0


class ThickLine:
    """A polyline thickened by ``half_width`` metres (a capsule region).

    This is the paper's "thick geometry": membership means being within
    ``half_width`` of the base polyline.  Crossing detection additionally
    checks the angle between the moving segment and the local road heading,
    because the paper only accepts crossings "on an angle within a
    predefined range".
    """

    __slots__ = ("line", "half_width")

    def __init__(self, line: LineString, half_width: float) -> None:
        if half_width <= 0.0:
            raise ValueError("half_width must be positive")
        self.line = line
        self.half_width = float(half_width)

    def contains(self, p: Point) -> bool:
        """True when ``p`` lies within the capsule."""
        return self.line.distance_to(p) <= self.half_width

    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box of the capsule."""
        coords = self.line.coords
        w = self.half_width
        return (
            float(coords[:, 0].min()) - w,
            float(coords[:, 1].min()) - w,
            float(coords[:, 0].max()) + w,
            float(coords[:, 1].max()) + w,
        )

    def crossed_by(
        self,
        a: Point,
        b: Point,
        min_angle_deg: float = 0.0,
        max_angle_deg: float = 90.0,
    ) -> bool:
        """Does the movement segment ``a``->``b`` cross the thick region?

        A crossing requires (1) the segment to enter the capsule — tested as
        either endpoint inside, or the capsule axis passing within
        ``half_width`` of the segment — and (2) the crossing angle between
        the movement direction and the local road heading to fall inside
        ``[min_angle_deg, max_angle_deg]``.
        """
        move = (b[0] - a[0], b[1] - a[1])
        if move == (0.0, 0.0):
            return False
        inside_a = self.contains(a)
        inside_b = self.contains(b)
        touches = inside_a or inside_b
        arc = None
        if inside_a:
            __, arc, __ = self.line.project(a)
        elif inside_b:
            __, arc, __ = self.line.project(b)
        if not touches:
            # Neither endpoint inside: check the true geometric crossing of
            # the capsule axis, then widen to the capsule by distance.
            hits = self.line.crossings(a, b)
            if hits:
                touches = True
                arc = hits[0][1]
            else:
                mid = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
                if self.contains(mid):
                    touches = True
                    __, arc, __ = self.line.project(mid)
        if not touches or arc is None:
            return False
        heading = self.line.heading_at(arc)
        ang = crossing_angle_deg(move, heading)
        return min_angle_deg <= ang <= max_angle_deg

    def __repr__(self) -> str:
        return f"ThickLine({self.line!r}, half_width={self.half_width:.1f})"


def capsule_distance(line: LineString, p: Point) -> float:
    """Signed distance from ``p`` to a capsule around ``line`` of width 0.

    Positive outside the axis; provided as a convenience for callers that
    want to build their own containment thresholds.
    """
    return line.distance_to(p)


def convex_hull(points: Iterable[Point]) -> list[Point]:
    """Andrew's monotone-chain convex hull (counter-clockwise)."""
    pts = sorted(set((float(x), float(y)) for x, y in points))
    if len(pts) <= 2:
        return pts

    def cross(o: Point, a: Point, b: Point) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[Point] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0.0:
            lower.pop()
        lower.append(p)
    upper: list[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0.0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def polygon_from_hull(points: Iterable[Point], pad: float = 0.0) -> Polygon:
    """Convex hull polygon of ``points``, optionally padded outward.

    Padding moves each hull vertex away from the centroid by ``pad`` metres;
    a cheap approximation of a buffer, adequate for area-of-interest tests.
    """
    hull = convex_hull(points)
    if len(hull) < 3:
        raise ValueError("need at least three non-collinear points")
    if pad <= 0.0:
        return Polygon(hull)
    cx = sum(p[0] for p in hull) / len(hull)
    cy = sum(p[1] for p in hull) / len(hull)
    padded = []
    for x, y in hull:
        d = math.hypot(x - cx, y - cy)
        if d == 0.0:
            padded.append((x, y))
        else:
            s = (d + pad) / d
            padded.append((cx + (x - cx) * s, cy + (y - cy) * s))
    return Polygon(padded)
