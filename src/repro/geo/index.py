"""Uniform grid spatial index.

PostGIS gives the paper's pipeline cheap "features near a point" queries;
this module provides the pure Python equivalent.  A :class:`GridIndex`
hashes items into fixed-size square cells by bounding box, which is the
right trade-off for road networks whose segments are short and uniformly
spread.  Query cost is O(items in nearby cells).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Sequence
from typing import Generic, TypeVar

from repro.geo.geometry import Point

T = TypeVar("T", bound=Hashable)


class GridIndex(Generic[T]):
    """Spatial hash of items keyed by bounding boxes on a uniform grid.

    Items are inserted with an axis-aligned bounding box and retrieved by
    point-radius or box queries.  Candidate sets may contain false
    positives (bounding boxes only); callers refine with exact geometry.

    Cell buckets are insertion-ordered dicts, not lists: removal is O(1)
    per cell instead of an O(bucket) scan (re-insert-heavy workloads
    degrade quadratically otherwise), while iteration order — and thus
    every query result — stays exactly the insertion order a list gave.
    """

    __slots__ = ("cell_size", "_cells", "_boxes")

    def __init__(self, cell_size: float = 100.0) -> None:
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], dict[T, None]] = {}
        self._boxes: dict[T, tuple[float, float, float, float]] = {}

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, item: T) -> bool:
        return item in self._boxes

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    def _keys_for_box(
        self, x_min: float, y_min: float, x_max: float, y_max: float
    ) -> Iterable[tuple[int, int]]:
        i0, j0 = self._key(x_min, y_min)
        i1, j1 = self._key(x_max, y_max)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                yield (i, j)

    def insert(
        self, item: T, x_min: float, y_min: float, x_max: float, y_max: float
    ) -> None:
        """Insert ``item`` with its bounding box. Re-inserting replaces it."""
        if x_max < x_min or y_max < y_min:
            raise ValueError("malformed bounding box")
        if item in self._boxes:
            self.remove(item)
        self._boxes[item] = (x_min, y_min, x_max, y_max)
        for key in self._keys_for_box(x_min, y_min, x_max, y_max):
            self._cells.setdefault(key, {})[item] = None

    def insert_point(self, item: T, p: Point) -> None:
        """Insert a degenerate (point) bounding box."""
        self.insert(item, p[0], p[1], p[0], p[1])

    def remove(self, item: T) -> None:
        """Remove ``item``; raises KeyError if absent.  O(cells covered)."""
        box = self._boxes.pop(item)
        for key in self._keys_for_box(*box):
            bucket = self._cells.get(key)
            if bucket is not None:
                bucket.pop(item, None)
                if not bucket:
                    del self._cells[key]

    def query_box(
        self, x_min: float, y_min: float, x_max: float, y_max: float
    ) -> list[T]:
        """Items whose bounding box intersects the query box."""
        seen: dict[T, None] = {}
        for key in self._keys_for_box(x_min, y_min, x_max, y_max):
            for item in self._cells.get(key, ()):
                if item in seen:
                    continue
                bx0, by0, bx1, by1 = self._boxes[item]
                if bx0 <= x_max and bx1 >= x_min and by0 <= y_max and by1 >= y_min:
                    seen[item] = None
        return list(seen)

    def query_radius(self, p: Point, radius: float) -> list[T]:
        """Items whose bounding box intersects the disc around ``p``.

        Bounding-box level only; callers wanting exact distance must refine.
        """
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        return self.query_box(p[0] - radius, p[1] - radius, p[0] + radius, p[1] + radius)

    def query_radius_many(self, points: Sequence[Point], radius: float) -> list[list[T]]:
        """Bulk :meth:`query_radius` — one result list per query point.

        Each list is exactly what ``query_radius(p, radius)`` returns (same
        items, same order: cells scanned row-major, bucket insertion order
        within a cell).  The cell-range arithmetic is hoisted out of the
        per-point call and the bbox test inlined, which is what makes the
        batched candidate-generation path cheap.
        """
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        cs = self.cell_size
        cells = self._cells
        boxes = self._boxes
        out: list[list[T]] = []
        for px, py in points:
            x_min = px - radius
            y_min = py - radius
            x_max = px + radius
            y_max = py + radius
            i0 = int(math.floor(x_min / cs))
            j0 = int(math.floor(y_min / cs))
            i1 = int(math.floor(x_max / cs))
            j1 = int(math.floor(y_max / cs))
            seen: dict[T, None] = {}
            for i in range(i0, i1 + 1):
                for j in range(j0, j1 + 1):
                    bucket = cells.get((i, j))
                    if not bucket:
                        continue
                    for item in bucket:
                        if item in seen:
                            continue
                        bx0, by0, bx1, by1 = boxes[item]
                        if bx0 <= x_max and bx1 >= x_min and by0 <= y_max and by1 >= y_min:
                            seen[item] = None
            out.append(list(seen))
        return out

    def nearest(self, p: Point, max_radius: float = math.inf) -> T | None:
        """Item whose bounding box is nearest to ``p`` (box distance).

        Searches expanding rings of cells; returns None if nothing is found
        within ``max_radius``.
        """
        if not self._boxes:
            return None
        ring = 0
        best: T | None = None
        best_d = math.inf
        ci, cj = self._key(p[0], p[1])
        max_ring = int(math.ceil(min(max_radius, 1e12) / self.cell_size)) + 1
        while ring <= max_ring:
            found_any = False
            for i in range(ci - ring, ci + ring + 1):
                for j in range(cj - ring, cj + ring + 1):
                    if max(abs(i - ci), abs(j - cj)) != ring:
                        continue
                    for item in self._cells.get((i, j), ()):
                        found_any = True
                        d = self._box_distance(p, self._boxes[item])
                        if d < best_d:
                            best_d = d
                            best = item
            # Once something is found, one extra ring suffices: anything
            # farther out is at least (ring-1)*cell_size away.
            if best is not None and best_d <= (ring - 1) * self.cell_size:
                break
            if found_any and best is not None and ring > 0:
                break
            ring += 1
        if best is not None and best_d <= max_radius:
            return best
        return None

    @staticmethod
    def _box_distance(p: Point, box: tuple[float, float, float, float]) -> float:
        x0, y0, x1, y1 = box
        dx = max(x0 - p[0], 0.0, p[0] - x1)
        dy = max(y0 - p[1], 0.0, p[1] - y1)
        return math.hypot(dx, dy)
