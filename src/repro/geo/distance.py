"""Distances and bearings on the Earth.

Two distance functions are provided:

* :func:`haversine_m` — great-circle distance on a sphere, exact enough for
  any trip-length computation in the pipeline;
* :func:`equirectangular_m` — a fast small-area approximation used in inner
  loops (candidate search, stop detection) where sub-metre accuracy over a
  few kilometres is sufficient.

All angles are degrees, all distances metres.
"""

from __future__ import annotations

import math

#: Mean Earth radius (IUGG), metres.
EARTH_RADIUS_M = 6_371_008.8


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two WGS84 points."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def equirectangular_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Fast equirectangular distance in metres.

    Accurate to well under 0.1 % for separations below ~50 km, which covers
    the 30 km trip-length cap the paper applies.
    """
    mean_phi = math.radians((lat1 + lat2) / 2.0)
    x = math.radians(lon2 - lon1) * math.cos(mean_phi)
    y = math.radians(lat2 - lat1)
    return EARTH_RADIUS_M * math.hypot(x, y)


def bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, degrees in [0, 360)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlam = math.radians(lon2 - lon1)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(
    lat: float, lon: float, bearing: float, distance_m: float
) -> tuple[float, float]:
    """Point reached from ``(lat, lon)`` travelling ``distance_m`` on ``bearing``.

    Returns ``(lat, lon)`` in degrees.  Spherical model, consistent with
    :func:`haversine_m`.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing)
    phi1 = math.radians(lat)
    lam1 = math.radians(lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    return math.degrees(phi2), (math.degrees(lam2) + 540.0) % 360.0 - 180.0
